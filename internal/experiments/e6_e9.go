package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/myhadoop"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// E6Point is one cleanup-interval setting's outcome.
type E6Point struct {
	Cleanup       time.Duration
	Sessions      int
	GhostFailures int
	FailureRate   float64
	OrphansKilled int
}

// E6Result is the structured outcome of E6.
type E6Result struct {
	Points []E6Point
}

// E6GhostDaemons sweeps the scheduler's clean-up interval and measures
// how often a student's myHadoop provisioning fails because another
// student's orphaned daemons still hold the Hadoop ports — the §II-B
// failure mode ("the student would have to wait 15 minutes for the
// scheduler to clean up these daemons").
func E6GhostDaemons(seed int64) (*Result, error) {
	const (
		sessions     = 40
		nodesPerUser = 8
		poolNodes    = 16
		uncleanRate  = 0.4
		meanGap      = 5 * time.Minute
		sessionLen   = 10 * time.Minute
	)
	res := &E6Result{}
	for _, cleanup := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, 30 * time.Minute} {
		eng := sim.NewEngine()
		topo := cluster.NewTopology(cluster.PaperNodeConfig(poolNodes, 1))
		pbs := myhadoop.NewPBS(eng, topo, cleanup)
		rng := sim.NewRand(seed).Derive("sessions")
		failures := 0
		for i := 0; i < sessions; i++ {
			eng.Advance(time.Duration(rng.Exponential(float64(meanGap))))
			user := fmt.Sprintf("student%02d", i)
			res2, err := pbs.Submit(user, nodesPerUser, time.Hour)
			if err != nil {
				return nil, err
			}
			if res2.State != myhadoop.ResRunning {
				// Pool busy; skip this arrival (the student comes back).
				continue
			}
			run, err := myhadoop.Provision(pbs, res2, myhadoop.ProvisionOptions{Seed: seed + int64(i)})
			var ghost *myhadoop.GhostDaemonError
			if errors.As(err, &ghost) {
				failures++
				pbs.Release(res2)
				continue
			}
			if err != nil {
				return nil, err
			}
			eng.Advance(sessionLen)
			if rng.Bernoulli(uncleanRate) {
				run.ExitWithoutStopping()
			} else {
				run.StopDaemons()
			}
			pbs.Release(res2)
		}
		res.Points = append(res.Points, E6Point{
			Cleanup:       cleanup,
			Sessions:      sessions,
			GhostFailures: failures,
			FailureRate:   float64(failures) / float64(sessions),
			OrphansKilled: pbs.OrphansKilled,
		})
	}
	out := &Result{
		ID:     "E6",
		Title:  "Provisioning failures from ghost daemons vs scheduler cleanup interval",
		Header: []string{"cleanup interval", "sessions", "ghost failures", "failure rate", "orphans killed"},
		Raw:    res,
		Notes: []string{
			"40% of students exit without stopping Hadoop; ports stay bound until the cleanup script runs",
		},
	}
	for _, p := range res.Points {
		out.Rows = append(out.Rows, []string{
			p.Cleanup.String(),
			fmt.Sprintf("%d", p.Sessions),
			fmt.Sprintf("%d", p.GhostFailures),
			fmt.Sprintf("%.0f%%", 100*p.FailureRate),
			fmt.Sprintf("%d", p.OrphansKilled),
		})
	}
	return out, nil
}

// E7Point is one dataset's modelled staging time.
type E7Point struct {
	Dataset string
	Size    int64
	Staging time.Duration
}

// E7Result is the structured outcome of E7.
type E7Result struct {
	Points []E7Point
}

// StagingTime computes the modelled `hadoop fs -put` time for a dataset
// of the given size from a login node: per block, the pipeline bottleneck
// is the slowest of the gateway hop, the intra-rack forwarding hops and
// the replica disk writes. This is the same arithmetic the HDFS client
// charges per real block, evaluated analytically so paper-scale datasets
// (171 GB) need no real bytes.
func StagingTime(size, blockSize int64, cm cluster.CostModel) time.Duration {
	if size <= 0 {
		return 0
	}
	if blockSize <= 0 {
		blockSize = 64 << 20
	}
	var total time.Duration
	for off := int64(0); off < size; off += blockSize {
		b := blockSize
		if off+b > size {
			b = size - off
		}
		bottleneck := cm.Transfer(4, b) // gateway -> first DataNode
		if t := cm.Transfer(2, b); t > bottleneck {
			bottleneck = t
		}
		if t := cm.DiskWrite(b); t > bottleneck {
			bottleneck = t
		}
		total += bottleneck
	}
	return total
}

// E7Staging evaluates staging time at the paper's dataset scales: the
// Google trace "can take over an hour for students to stage"; the Yahoo
// data "takes less than five minutes to load ... into the HDFS file
// system".
func E7Staging(seed int64) (*Result, error) {
	cm := cluster.DefaultCostModel()
	const blockSize = 64 << 20
	datasets := []struct {
		name string
		size int64
	}{
		{"MovieLens ratings (assignment 1)", 250 * cluster.MB},
		{"Yahoo! Music (assignment 2)", 10 * cluster.GB},
		{"Airline on-time (labs)", 12 * cluster.GB},
		{"Google cluster trace", 171 * cluster.GB},
	}
	res := &E7Result{}
	out := &Result{
		ID:     "E7",
		Title:  "Modelled `hadoop fs -put` staging time from the login node",
		Header: []string{"dataset", "size", "staging time", "paper anchor"},
		Raw:    res,
		Notes: []string{
			"64 MB blocks, 3-way pipeline, oversubscribed core uplink (default cost model)",
		},
	}
	anchors := map[string]string{
		"Google cluster trace":        "\"can take over an hour\"",
		"Yahoo! Music (assignment 2)": "\"less than five minutes\"",
	}
	for _, d := range datasets {
		t := StagingTime(d.size, blockSize, cm)
		res.Points = append(res.Points, E7Point{Dataset: d.name, Size: d.size, Staging: t})
		sizeStr := fmt.Sprintf("%d GB", d.size/cluster.GB)
		if d.size < cluster.GB {
			sizeStr = fmt.Sprintf("%d MB", d.size/cluster.MB)
		}
		out.Rows = append(out.Rows, []string{
			d.name,
			sizeStr,
			t.Round(time.Second).String(),
			anchors[d.name],
		})
	}
	return out, nil
}

// E8Result is the structured outcome of E8.
type E8Result struct {
	UnderReplicatedAfterKill int
	HealthyAfterRecovery     bool
	Transcript               string
}

// E8FsckRecovery replays the assignment-2 shell exercise: stage data,
// inspect blocks and replication with fs commands, lose a DataNode, watch
// fsck report under-replication, and watch the replication monitor heal
// the filesystem.
func E8FsckRecovery(seed int64) (*Result, error) {
	c, err := core.New(core.Options{
		Nodes: 6,
		Seed:  seed,
		HDFS: hdfs.Config{
			BlockSize:           256 << 10,
			Replication:         3,
			HeartbeatInterval:   time.Second,
			HeartbeatExpiry:     10 * time.Second,
			ReplMonitorInterval: time.Minute,
		},
	})
	if err != nil {
		return nil, err
	}
	local := vfs.NewMemFS()
	if _, _, err := datagen.Music(local, "/home/ym", datagen.MusicOpts{Ratings: 15000, Seed: seed}); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	sh := &shell.Shell{FS: c.FS(), Local: local, Out: &buf, User: "student"}
	script := `
hadoop fs -mkdir /user/student
hadoop fs -put /home/ym/ratings.tsv /user/student/ratings.tsv
hadoop fs -put /home/ym/songs.tsv /user/student/songs.tsv
hadoop fs -ls /user/student
hadoop fs -stat /user/student/ratings.tsv
hadoop fs -locations /user/student/ratings.tsv
hadoop fs -setrep 2 /user/student/songs.tsv
hadoop fs -fsck /
`
	if err := sh.RunScript(script); err != nil {
		return nil, err
	}
	// Lose a DataNode holding replicas.
	fmt.Fprintf(&buf, "\n--- datanode on node002 crashes; heartbeats expire ---\n")
	c.DFS.DataNode(2).Kill()
	c.Engine.Advance(15 * time.Second)
	midFsck, err := c.Fsck()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, "$ hadoop fs -fsck /\n%s", midFsck)
	fmt.Fprintf(&buf, "\n--- replication monitor re-replicates from surviving copies ---\n")
	c.Engine.Advance(2 * time.Minute)
	if err := sh.Run("-fsck", "/"); err != nil {
		return nil, err
	}
	finalFsck, err := c.Fsck()
	if err != nil {
		return nil, err
	}
	res := &E8Result{
		UnderReplicatedAfterKill: midFsck.UnderReplicated,
		HealthyAfterRecovery:     finalFsck.Healthy() && finalFsck.UnderReplicated == 0,
		Transcript:               buf.String(),
	}
	return &Result{
		ID:    "E8",
		Title: "Shell transcript: observe how HDFS stores, replicates and recovers",
		Text:  res.Transcript,
		Raw:   res,
	}, nil
}

// E9Point is one scalability measurement.
type E9Point struct {
	Nodes           int
	Makespan        time.Duration
	Speedup         float64
	LocalityPercent float64
}

// E9Result is the structured outcome of E9.
type E9Result struct {
	Points []E9Point
	// Speculation ablation under an injected straggler.
	StragglerWithout time.Duration
	StragglerWith    time.Duration
	SpeculationGain  float64
	// Placement ablation on a two-rack cluster: the default policy
	// guarantees rack-redundant replicas; random placement does not, and
	// loses blocks when a rack fails.
	RackRedundantDefaultPct     float64
	RackRedundantRandomPct      float64
	MissingAfterRackLossDefault int
	MissingAfterRackLossRandom  int
}

// E9Scalability measures the airline job's speedup from 1 to 16 nodes
// (the module's "understand the scalability and performance of MapReduce
// programs running on HDFS" objective) and ablates speculative execution
// under an 8x straggler node.
func E9Scalability(seed int64) (*Result, error) {
	res := &E9Result{}
	var base time.Duration
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		c, err := core.New(core.Options{
			Nodes: nodes,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
			MR:    expMRConfig(),
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 40000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.AirlineAvgDelayCombiner("/in", "/out"))
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			base = rep.Makespan()
		}
		res.Points = append(res.Points, E9Point{
			Nodes:           nodes,
			Makespan:        rep.Makespan(),
			Speedup:         float64(base) / float64(rep.Makespan()),
			LocalityPercent: 100 * rep.LocalityFraction(),
		})
	}
	// Speculation ablation.
	for _, spec := range []bool{false, true} {
		cfg := expMRConfig()
		cfg.Speculative = spec
		cfg.NodeSlowdown = map[cluster.NodeID]float64{3: 8}
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
			MR:    cfg,
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 40000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.AirlineAvgDelayCombiner("/in", "/out"))
		if err != nil {
			return nil, err
		}
		if spec {
			res.StragglerWith = rep.Makespan()
		} else {
			res.StragglerWithout = rep.Makespan()
		}
	}
	res.SpeculationGain = float64(res.StragglerWithout) / float64(res.StragglerWith)

	// Placement-policy ablation: the default policy's cross-rack replica
	// guarantees data survival when a whole rack fails; random placement
	// leaves a fraction of blocks confined to one rack.
	for _, random := range []bool{false, true} {
		c, err := core.New(core.Options{
			Nodes: 8,
			Racks: 2,
			Seed:  seed,
			HDFS: hdfs.Config{BlockSize: 64 << 10, Replication: 2,
				RandomPlacement: random, HeartbeatInterval: time.Second,
				HeartbeatExpiry: 5 * time.Second, ReplMonitorInterval: time.Hour},
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 40000, Seed: seed}); err != nil {
			return nil, err
		}
		locs, err := c.FS().BlockLocations("/in/ontime.csv")
		if err != nil {
			return nil, err
		}
		spanning := 0
		for _, loc := range locs {
			racks := map[int]bool{}
			for _, n := range loc.Nodes {
				racks[c.Topology.RackOf(n)] = true
			}
			if len(racks) >= 2 {
				spanning++
			}
		}
		pct := 100 * float64(spanning) / float64(len(locs))
		// Rack 1 fails entirely; count the blocks HDFS can no longer serve.
		for _, id := range c.Topology.NodesInRack(1) {
			c.DFS.DataNode(id).Kill()
		}
		c.Engine.Advance(10 * time.Second)
		fsck, err := c.Fsck()
		if err != nil {
			return nil, err
		}
		if random {
			res.RackRedundantRandomPct = pct
			res.MissingAfterRackLossRandom = fsck.MissingBlocks
		} else {
			res.RackRedundantDefaultPct = pct
			res.MissingAfterRackLossDefault = fsck.MissingBlocks
		}
	}

	out := &Result{
		ID:     "E9",
		Title:  "Airline job scalability (1-16 nodes) and speculative-execution ablation",
		Header: []string{"nodes", "makespan", "speedup", "data-local maps"},
		Raw:    res,
	}
	for _, p := range res.Points {
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmtDur(p.Makespan),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0f%%", p.LocalityPercent),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("8x straggler node, speculation off: %s; on: %s (%.2fx gain)",
			fmtDur(res.StragglerWithout), fmtDur(res.StragglerWith), res.SpeculationGain),
		fmt.Sprintf("placement ablation (2 racks, repl 2): rack-redundant blocks %.0f%% (default policy) vs %.0f%% (random); after losing a rack, missing blocks %d vs %d",
			res.RackRedundantDefaultPct, res.RackRedundantRandomPct,
			res.MissingAfterRackLossDefault, res.MissingAfterRackLossRandom))
	return out, nil
}

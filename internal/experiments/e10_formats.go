package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
)

// E10Point is one container format's outcome for the identical corpus.
type E10Point struct {
	Format    string
	FileBytes int64
	MapTasks  int
	BytesRead int64
	Makespan  time.Duration
}

// E10Result is the structured outcome of E10.
type E10Result struct {
	// Points covers text, whole-stream gzip and block-compressed
	// SequenceFile, in that order.
	Points []E10Point
	// Shuffle-compression ablation on the text corpus.
	ShuffleRawBytes  int64
	ShuffleWireBytes int64
	MakespanPlain    time.Duration
	MakespanComp     time.Duration
}

// e10Format finds a format's point.
func (r *E10Result) e10Format(name string) E10Point {
	for _, p := range r.Points {
		if p.Format == name {
			return p
		}
	}
	return E10Point{}
}

// E10Formats runs WordCount over the same seed-for-seed corpus in three
// containers — plain text, whole-stream gzip, block-compressed
// SequenceFile — and measures the trade the formats lecture turns on:
// gzip shrinks storage but collapses the job to one map task, while the
// SequenceFile keeps both the compression and the parallelism. A second
// ablation toggles shuffle compression and measures the wire bytes it
// saves.
func E10Formats(seed int64) (*Result, error) {
	const lines = 20000
	res := &E10Result{}
	for _, format := range []string{"text", "gz", "seq-gzip"} {
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
			MR:    expMRConfig(),
		})
		if err != nil {
			return nil, err
		}
		path := datagen.TextPathFor("/in/corpus.txt", format)
		_, n, err := datagen.TextAs(c.FS(), path,
			datagen.TextOpts{Lines: lines, Seed: seed, SeqBlockBytes: 16 << 10}, format)
		if err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.WordCount(path, "/out", true))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, E10Point{
			Format:    format,
			FileBytes: n,
			MapTasks:  rep.MapTasks,
			BytesRead: rep.Counters.Get(mapreduce.CtrHDFSBytesRead),
			Makespan:  rep.Makespan(),
		})
	}

	// Shuffle ablation: same text corpus and job, map outputs shipped raw
	// vs gzip-compressed across the simulated network.
	for _, compress := range []bool{false, true} {
		cfg := expMRConfig()
		cfg.CompressShuffle = compress
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
			MR:    cfg,
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.TextAs(c.FS(), "/in/corpus.txt",
			datagen.TextOpts{Lines: lines, Seed: seed}, "text"); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.WordCount("/in/corpus.txt", "/out", true))
		if err != nil {
			return nil, err
		}
		if compress {
			res.ShuffleWireBytes = rep.ShuffleBytes()
			res.MakespanComp = rep.Makespan()
		} else {
			res.ShuffleRawBytes = rep.ShuffleBytes()
			res.MakespanPlain = rep.Makespan()
		}
	}

	out := &Result{
		ID:     "E10",
		Title:  "File formats: storage, parallelism and makespan for the same corpus",
		Header: []string{"format", "stored size", "map tasks", "bytes read", "makespan"},
		Raw:    res,
	}
	for _, p := range res.Points {
		out.Rows = append(out.Rows, []string{
			p.Format,
			fmtMB(p.FileBytes),
			fmt.Sprintf("%d", p.MapTasks),
			fmtMB(p.BytesRead),
			fmtDur(p.Makespan),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("shuffle compression: %s raw vs %s on the wire (%.2fx), makespan %s vs %s",
			fmtMB(res.ShuffleRawBytes), fmtMB(res.ShuffleWireBytes),
			float64(res.ShuffleRawBytes)/float64(res.ShuffleWireBytes),
			fmtDur(res.MakespanPlain), fmtDur(res.MakespanComp)))
	return out, nil
}

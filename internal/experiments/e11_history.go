package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/history"
	"repro/internal/jobs"
	"repro/internal/vfs"
)

// E11Result is the structured outcome of E11: how much evidence the
// history subsystem records for a canonical run, and what the
// critical-path analysis attributes the makespan to.
type E11Result struct {
	// Volume of the two event streams and the persisted artifact.
	AuditEvents    int64
	JobEvents      int64
	BytesPersisted int64
	// Rebuilt from the persisted history file alone.
	Makespan         time.Duration
	Attempts         int
	CriticalPathLen  int
	PathWorkFraction float64 // critical-path work / makespan, 0..1
	ShuffleFraction  float64 // shuffle / total reduce time, 0..1
}

// E11History runs the canonical wordcount, then audits the auditors: it
// throws the live cluster away and reconstructs the job purely from what
// the history subsystem persisted — the NameNode audit log and the
// /history/<jobid>/events.jsonl file — the same exercise the history lab
// asks students to do by hand.
func E11History(seed int64) (*Result, error) {
	c, err := core.New(core.Options{
		Nodes: 8,
		Seed:  seed,
		HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
		MR:    expMRConfig(),
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt", datagen.TextOpts{Lines: 20000, Seed: seed}); err != nil {
		return nil, err
	}
	rep, err := c.Run(jobs.WordCount("/in", "/out", true))
	if err != nil {
		return nil, err
	}

	res := &E11Result{
		AuditEvents:    c.Obs.CounterValue(history.MetricAuditEvents),
		JobEvents:      c.Obs.CounterValue(history.MetricJobEvents),
		BytesPersisted: c.Obs.CounterValue(history.MetricBytesPersisted),
	}

	// From here on, use only the persisted file — not the live JobTracker.
	data, err := vfs.ReadFile(c.FS(), history.EventsPath(rep.JobID))
	if err != nil {
		return nil, fmt.Errorf("E11: reading persisted history: %w", err)
	}
	events, err := history.Parse(data)
	if err != nil {
		return nil, err
	}
	jr, err := history.BuildJobReport(events)
	if err != nil {
		return nil, err
	}
	res.Makespan = jr.Makespan()
	res.Attempts = len(jr.Attempts)
	path := jr.CriticalPath()
	res.CriticalPathLen = len(path)
	var pathWork time.Duration
	for _, a := range path {
		pathWork += a.Duration()
	}
	if res.Makespan > 0 {
		res.PathWorkFraction = float64(pathWork) / float64(res.Makespan)
	}
	if shuffle, reduceTotal := jr.ShuffleTotal(); reduceTotal > 0 {
		res.ShuffleFraction = float64(shuffle) / float64(reduceTotal)
	}

	out := &Result{
		ID:     "E11",
		Title:  "Job history & audit: reconstructing a run from its event logs",
		Header: []string{"record", "value"},
		Raw:    res,
		Rows: [][]string{
			{"NameNode audit events", fmt.Sprintf("%d", res.AuditEvents)},
			{"job-history events", fmt.Sprintf("%d", res.JobEvents)},
			{"history bytes persisted to HDFS", fmt.Sprintf("%d", res.BytesPersisted)},
			{"attempts in history file", fmt.Sprintf("%d", res.Attempts)},
			{"critical-path attempts", fmt.Sprintf("%d", res.CriticalPathLen)},
			{"critical-path work / makespan", fmt.Sprintf("%.1f%%", 100*res.PathWorkFraction)},
			{"shuffle share of reduce time", fmt.Sprintf("%.1f%%", 100*res.ShuffleFraction)},
		},
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("makespan %s rebuilt from /history/%s/events.jsonl alone; the live cluster was not consulted",
			fmtDur(res.Makespan), rep.JobID))
	return out, nil
}

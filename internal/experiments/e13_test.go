package experiments

import (
	"bytes"
	"testing"
)

// TestE13Smoke is the CI gate on the serving benchmark: a scaled-down
// E13 (the full registry entry runs 8 mix combinations at 12k ops each)
// still has to show the shape of the claims — every mix completes, the
// cache tier speeds up the read-heavy mixes, and the crash scenario
// recovers with zero lost acknowledged writes.
func TestE13Smoke(t *testing.T) {
	opts := E13Opts{Records: 800, Ops: 2400, Clients: 16, Servers: 4}
	res, err := E13Scaled(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := res.Raw.(*E13Result)
	if !ok {
		t.Fatalf("E13 Raw is %T, want *E13Result", res.Raw)
	}
	if len(raw.Runs) != 8 {
		t.Fatalf("%d runs, want 4 mixes x {plain, cached}", len(raw.Runs))
	}
	for _, s := range raw.Runs {
		if s.Ops == 0 || s.OpsPerSec <= 0 {
			t.Fatalf("mix %s cache=%v: no throughput: %+v", s.Mix, s.Cache, s)
		}
		if s.Errors > 0 {
			t.Fatalf("mix %s cache=%v: %d errors without faults", s.Mix, s.Cache, s.Errors)
		}
		if s.P50 <= 0 || s.P50 > s.P99 || s.P99 > s.P999 {
			t.Fatalf("mix %s cache=%v: broken percentiles %v/%v/%v", s.Mix, s.Cache, s.P50, s.P99, s.P999)
		}
	}
	// The cache tier must win on the read-heavy mixes.
	for _, mix := range []string{"b", "c"} {
		plain, cached := raw.Run(mix, false), raw.Run(mix, true)
		if cached.OpsPerSec <= plain.OpsPerSec {
			t.Errorf("mix %s: cache tier did not help: %.0f vs %.0f ops/sec",
				mix, cached.OpsPerSec, plain.OpsPerSec)
		}
		if cached.CacheHitRate <= 0.3 {
			t.Errorf("mix %s: cache hit rate %.2f", mix, cached.CacheHitRate)
		}
	}
	// Crash recovery: regions reassigned, nothing acknowledged lost.
	if raw.Crash.Reassigns == 0 {
		t.Error("crash scenario reassigned no regions")
	}
	if raw.Crash.LostAckedWrites != 0 {
		t.Errorf("%d acknowledged writes lost in recovery", raw.Crash.LostAckedWrites)
	}
	if raw.Crash.VerifiedWrites == 0 {
		t.Error("crash scenario verified nothing")
	}
	if raw.Crash.RecoverySeconds <= 0 {
		t.Errorf("recovery window %.2fs", raw.Crash.RecoverySeconds)
	}
	// Headline extraction works on the scaled run too.
	m := HeadlineMetrics("E13", res)
	if m["workloadc-cache-speedup-x"] <= 1 {
		t.Errorf("headline speedup %.2f, want > 1", m["workloadc-cache-speedup-x"])
	}
	if m["lost-acked-writes"] != 0 {
		t.Errorf("headline lost-acked-writes %v", m["lost-acked-writes"])
	}
}

// TestE13ReplayDeterministic runs the crash scenario twice per seed and
// compares the META event log and obs snapshot byte for byte — the
// serving tier's replays-are-identical guarantee, cache tier, fault
// injector and all.
func TestE13ReplayDeterministic(t *testing.T) {
	small := E13Opts{Records: 600, Ops: 1800, Clients: 16, Servers: 4}
	cases := []struct {
		seed int64
		opts E13Opts
	}{
		{seed: 1234, opts: E13Opts{}}, // full-scale crash scenario
		{seed: 7, opts: small},
		{seed: 99, opts: small},
	}
	for _, tc := range cases {
		tc := tc
		if testing.Short() && tc.opts == (E13Opts{}) {
			continue
		}
		log1, snap1, err := E13ReplayArtifacts(tc.seed, tc.opts)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		log2, snap2, err := E13ReplayArtifacts(tc.seed, tc.opts)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", tc.seed, err)
		}
		if !bytes.Equal(log1, log2) {
			t.Errorf("seed %d: META logs differ across replays", tc.seed)
		}
		if !bytes.Equal(snap1, snap2) {
			t.Errorf("seed %d: obs snapshots differ across replays", tc.seed)
		}
		if len(log1) == 0 {
			t.Errorf("seed %d: empty META log", tc.seed)
		}
	}
}

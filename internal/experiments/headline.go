package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
)

// Headline extraction: the small set of "who wins, by what factor"
// numbers each experiment's claim turns on. One extraction feeds both
// `go test -bench` (via b.ReportMetric in bench_test.go) and the
// BENCH_<pr>.json regression artifact written by cmd/benchreport, so the
// two views can never drift apart.

// HeadlineIDs lists the experiments that contribute headline metrics, in
// presentation order.
var HeadlineIDs = []string{"FIG1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

// HeadlineMetrics extracts id's headline metrics from a finished run.
// Metric names ending in "-x" are ratios where >1 means the paper's
// claimed winner won; the regression test keys its direction checks on
// that convention.
func HeadlineMetrics(id string, r *Result) map[string]float64 {
	switch id {
	case "FIG1":
		res := r.Raw.(*Fig1Result)
		last := res.Points[len(res.Points)-1]
		return map[string]float64{
			"hpc-slowdown-at-16-nodes": last.Slowdown,
			"locality-%":               last.LocalityPercent,
		}
	case "E1":
		res := r.Raw.(*MeltdownResult)
		return map[string]float64{
			"completed-fraction": res.CompletedFraction(),
			"recovery-minutes":   res.RecoveryTime.Minutes(),
			"dead-datanodes":     float64(res.DeadDataNodes),
		}
	case "E2":
		res := r.Raw.(*E2Result)
		return map[string]float64{
			"shuffle-reduction-x": float64(res.Plain.ShuffleBytes) / float64(res.Combiner.ShuffleBytes),
			"map-phase-ratio":     float64(res.Combiner.MapPhase) / float64(res.Plain.MapPhase),
		}
	case "E3":
		res := r.Raw.(*E3Result)
		return map[string]float64{
			"plain-vs-imc-shuffle-x": float64(res.Plain.ShuffleBytes) / float64(res.InMapper.ShuffleBytes),
			"imc-memory-bytes":       float64(res.InMapper.MemoryPeak),
		}
	case "E4":
		res := r.Raw.(*E4Result)
		return map[string]float64{"naive-vs-cached-x": res.Ratio}
	case "E5":
		res := r.Raw.(*E5Result)
		return map[string]float64{"cluster-speedup-x": res.Speedup}
	case "E6":
		res := r.Raw.(*E6Result)
		return map[string]float64{
			"failure-rate-at-30m": res.Points[len(res.Points)-1].FailureRate,
		}
	case "E7":
		res := r.Raw.(*E7Result)
		m := map[string]float64{}
		for _, p := range res.Points {
			if p.Size == 171<<30 {
				m["trace-staging-minutes"] = p.Staging.Minutes()
			}
		}
		return m
	case "E8":
		res := r.Raw.(*E8Result)
		return map[string]float64{
			"under-replicated-after-kill": float64(res.UnderReplicatedAfterKill),
		}
	case "E9":
		res := r.Raw.(*E9Result)
		return map[string]float64{
			"speedup-at-16-nodes": res.Points[len(res.Points)-1].Speedup,
			"speculation-gain-x":  res.SpeculationGain,
		}
	case "E10":
		res := r.Raw.(*E10Result)
		text, gz, seq := res.e10Format("text"), res.e10Format("gz"), res.e10Format("seq-gzip")
		return map[string]float64{
			"gz-map-tasks":          float64(gz.MapTasks),
			"seq-parallelism-x":     float64(seq.MapTasks) / float64(gz.MapTasks),
			"seq-storage-savings-x": float64(text.FileBytes) / float64(seq.FileBytes),
			"gz-vs-seq-makespan-x":  float64(gz.Makespan) / float64(seq.Makespan),
			"seq-read-reduction-x":  float64(text.BytesRead) / float64(seq.BytesRead),
			"shuffle-compression-x": float64(res.ShuffleRawBytes) / float64(res.ShuffleWireBytes),
		}
	case "E11":
		res := r.Raw.(*E11Result)
		return map[string]float64{
			"audit-events":       float64(res.AuditEvents),
			"job-events":         float64(res.JobEvents),
			"history-bytes":      float64(res.BytesPersisted),
			"critical-path-len":  float64(res.CriticalPathLen),
			"path-work-fraction": res.PathWorkFraction,
		}
	case "E12":
		res := r.Raw.(*E12Result)
		fifoP99 := res.FIFO.QueueStats("students").P99
		capP99 := res.Capacity.QueueStats("students").P99
		return map[string]float64{
			"apps":                      float64(res.Apps),
			"students-p99-reduction-x":  float64(fifoP99) / float64(capP99),
			"students-p99-cap-minutes":  capP99.Minutes(),
			"students-p99-fifo-minutes": fifoP99.Minutes(),
			"preemptions":               float64(res.Capacity.Preemptions),
			"node-hours-saved-x":        res.FIFO.NodeHours / res.Capacity.NodeHours,
			"cap-makespan-minutes":      res.Capacity.Makespan.Minutes(),
		}
	case "E13":
		res := r.Raw.(*E13Result)
		aPlain := res.Run("a", false)
		cPlain, cCached := res.Run("c", false), res.Run("c", true)
		bPlain, bCached := res.Run("b", false), res.Run("b", true)
		ePlain := res.Run("e", false)
		return map[string]float64{
			"workloada-ops-per-sec":     aPlain.OpsPerSec,
			"workloada-p99-ms":          float64(aPlain.P99.Milliseconds()),
			"workloadc-ops-per-sec":     cPlain.OpsPerSec,
			"workloadc-p99-ms":          float64(cPlain.P99.Milliseconds()),
			"workloade-ops-per-sec":     ePlain.OpsPerSec,
			"workloadc-cache-speedup-x": cCached.OpsPerSec / cPlain.OpsPerSec,
			"workloadb-cache-speedup-x": bCached.OpsPerSec / bPlain.OpsPerSec,
			"cache-hit-rate":            cCached.CacheHitRate,
			"region-splits":             float64(aPlain.Splits),
			"recovery-seconds":          res.Crash.RecoverySeconds,
			"reassigned-regions":        float64(res.Crash.Reassigns),
			"lost-acked-writes":         float64(res.Crash.LostAckedWrites),
		}
	}
	return nil
}

// HeadlineReport is the machine-readable benchmark artifact
// (BENCH_<pr>.json): every headline metric at a fixed seed, plus the heap
// allocation count of one run of each experiment. AllocsPerOp is additive
// — artifacts committed before it existed unmarshal with a nil map and
// the regression diff skips them.
type HeadlineReport struct {
	Seed        int64                         `json:"seed"`
	Experiments map[string]map[string]float64 `json:"experiments"`
	AllocsPerOp map[string]float64            `json:"allocs_per_op,omitempty"`
}

// Headlines runs every headline experiment at seed and collects the
// extracted metrics. Deterministic: the same seed yields the same report
// (allocation counts can wobble slightly with map growth, which is why
// the regression test holds them to a band rather than equality).
func Headlines(seed int64) (*HeadlineReport, error) {
	rep := &HeadlineReport{
		Seed:        seed,
		Experiments: map[string]map[string]float64{},
		AllocsPerOp: map[string]float64{},
	}
	var ms runtime.MemStats
	for _, id := range HeadlineIDs {
		spec, ok := Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %s", id)
		}
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		r, err := spec.Run(seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		runtime.ReadMemStats(&ms)
		rep.AllocsPerOp[id] = float64(ms.Mallocs - before)
		rep.Experiments[id] = HeadlineMetrics(id, r)
	}
	return rep, nil
}

// JSON renders the report stably: indented, keys sorted (encoding/json
// sorts map keys), trailing newline.
func (hr *HeadlineReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(hr, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
)

// expCluster builds the standard 8-node experiment cluster.
func expCluster(seed int64, blockSize int64) (*core.MiniCluster, error) {
	return core.New(core.Options{
		Nodes: 8,
		Seed:  seed,
		HDFS:  hdfs.Config{BlockSize: blockSize, Replication: 3},
		MR:    expMRConfig(),
	})
}

// VariantRow is one job variant's measurements, shared by E2/E3/E4.
type VariantRow struct {
	Variant      string
	MapPhase     time.Duration
	ReducePhase  time.Duration
	Makespan     time.Duration
	ShuffleBytes int64
	MemoryPeak   int64
	SideOpens    int64
	SideBytes    int64
}

func variantRowFromReport(name string, rep *mrcluster.Report) VariantRow {
	return VariantRow{
		Variant:      name,
		MapPhase:     rep.MapPhase(),
		ReducePhase:  rep.ReducePhase(),
		Makespan:     rep.Makespan(),
		ShuffleBytes: rep.ShuffleBytes(),
		MemoryPeak:   rep.Counters.Get(mapreduce.CtrMapperMemoryPeak),
		SideOpens:    rep.Counters.Get(mapreduce.CtrSideFileOpens),
		SideBytes:    rep.Counters.Get(mapreduce.CtrSideFileBytesRead),
	}
}

// E2Result is the structured outcome of E2.
type E2Result struct {
	Plain    VariantRow
	Combiner VariantRow
}

// E2Combiner reproduces the first lecture's observable trade-off: with
// the reducer doubling as combiner, "the students observe the tradeoff
// between increased map task run time ... versus reduced network traffic".
func E2Combiner(seed int64) (*Result, error) {
	res := &E2Result{}
	for _, withCombiner := range []bool{false, true} {
		c, err := expCluster(seed, 64<<10)
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Text(c.FS(), "/in/corpus.txt",
			datagen.TextOpts{Lines: 50000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.WordCount("/in", "/out", withCombiner))
		if err != nil {
			return nil, err
		}
		if withCombiner {
			res.Combiner = variantRowFromReport("wordcount+combiner", rep)
		} else {
			res.Plain = variantRowFromReport("wordcount", rep)
		}
	}
	out := &Result{
		ID:     "E2",
		Title:  "WordCount with and without the reducer-as-combiner",
		Header: []string{"variant", "map phase", "shuffle", "reduce phase", "makespan"},
		Raw:    res,
		Notes: []string{
			"combiner raises map-side work but collapses shuffle volume to the per-split vocabulary",
		},
	}
	for _, r := range []VariantRow{res.Plain, res.Combiner} {
		out.Rows = append(out.Rows, []string{
			r.Variant, fmtDur(r.MapPhase), fmtMB(r.ShuffleBytes), fmtDur(r.ReducePhase), fmtDur(r.Makespan),
		})
	}
	return out, nil
}

// E3Result is the structured outcome of E3.
type E3Result struct {
	Plain    VariantRow
	Combiner VariantRow
	InMapper VariantRow
}

// E3Airline reproduces the MapReduce lab's three algorithmic designs for
// average delay per airline, emphasising "the trade-off in memory and
// network traffic due to different implementations of the combiner".
func E3Airline(seed int64) (*Result, error) {
	type variant struct {
		name  string
		build func(in, out string) *mapreduce.Job
		slot  *VariantRow
	}
	res := &E3Result{}
	builders := []variant{
		{"plain", jobs.AirlineAvgDelayPlain, &res.Plain},
		{"combiner+custom-value", jobs.AirlineAvgDelayCombiner, &res.Combiner},
		{"in-mapper-combining", jobs.AirlineAvgDelayInMapper, &res.InMapper},
	}
	for _, b := range builders {
		c, err := expCluster(seed, 64<<10)
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 40000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(b.build("/in", "/out"))
		if err != nil {
			return nil, err
		}
		*b.slot = variantRowFromReport(b.name, rep)
	}
	out := &Result{
		ID:     "E3",
		Title:  "Three average-delay implementations (Lin's algorithmic choices)",
		Header: []string{"variant", "shuffle", "mapper memory peak", "map phase", "makespan"},
		Raw:    res,
	}
	for _, r := range []VariantRow{res.Plain, res.Combiner, res.InMapper} {
		out.Rows = append(out.Rows, []string{
			r.Variant, fmtMB(r.ShuffleBytes), fmt.Sprintf("%d B", r.MemoryPeak), fmtDur(r.MapPhase), fmtDur(r.Makespan),
		})
	}
	return out, nil
}

// E4Result is the structured outcome of E4.
type E4Result struct {
	Naive          VariantRow
	NaiveDistCache VariantRow // ablation: DistributedCache under the naive access pattern
	Cached         VariantRow
	Ratio          float64
}

// E4SideData reproduces the assignment's optimisation lesson: reading the
// genre side file inside every map call versus caching it once in Setup —
// "the optimized implementation of this external access ... can make the
// program run one order of magnitude faster".
func E4SideData(seed int64) (*Result, error) {
	res := &E4Result{}
	variants := []struct {
		name      string
		cached    bool
		distCache bool
		slot      *VariantRow
	}{
		{"naive (read per record)", false, false, &res.Naive},
		{"naive + DistributedCache", false, true, &res.NaiveDistCache},
		{"cached (read once in Setup)", true, false, &res.Cached},
	}
	for _, v := range variants {
		cfg := expMRConfig()
		cfg.DistributedCache = v.distCache
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 128 << 10, Replication: 3},
			MR:    cfg,
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Movies(c.FS(), "/ml",
			datagen.MovieOpts{Movies: 300, Users: 400, Ratings: 30000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/out", v.cached))
		if err != nil {
			return nil, err
		}
		*v.slot = variantRowFromReport(v.name, rep)
	}
	res.Ratio = float64(res.Naive.Makespan) / float64(res.Cached.Makespan)
	out := &Result{
		ID:     "E4",
		Title:  "Side-data access pattern in the movie-genre join",
		Header: []string{"variant", "side opens", "side bytes read", "map phase", "makespan"},
		Raw:    res,
		Notes: []string{
			fmt.Sprintf("naive/cached makespan ratio: %.1fx (paper: one order of magnitude; hours vs minutes at full scale)", res.Ratio),
			"ablation: DistributedCache removes the repeated HDFS reads but not the repeated parsing CPU",
		},
	}
	for _, r := range []VariantRow{res.Naive, res.NaiveDistCache, res.Cached} {
		out.Rows = append(out.Rows, []string{
			r.Variant, fmt.Sprintf("%d", r.SideOpens), fmtMB(r.SideBytes), fmtDur(r.MapPhase), fmtDur(r.Makespan),
		})
	}
	return out, nil
}

// E5Result is the structured outcome of E5.
type E5Result struct {
	SerialTime  time.Duration
	ClusterTime time.Duration
	Speedup     float64
	SameAnswer  bool
}

// E5SerialVsCluster reproduces assignment 2 part 1: "takes the jar files
// from the first assignment and reruns them on the data on HDFS ... to
// demonstrate the ease in which Hadoop MapReduce can immediately speed up
// the application without having to worry about parallel workload
// division, process' ranks, etc."
func E5SerialVsCluster(seed int64) (*Result, error) {
	build := func(nodes, mapSlots int) (*core.MiniCluster, error) {
		cfg := expMRConfig()
		cfg.MapSlotsPerNode = mapSlots
		cfg.ReduceSlotsPerNode = 1
		return core.New(core.Options{
			Nodes: nodes,
			Seed:  seed,
			HDFS:  hdfs.Config{BlockSize: 64 << 10, Replication: 3},
			MR:    cfg,
		})
	}
	outputs := map[string]string{}
	times := map[string]time.Duration{}
	for _, mode := range []struct {
		label string
		nodes int
		slots int
	}{{"standalone (1 node, 1 slot)", 1, 1}, {"8-node HDFS cluster", 8, 2}} {
		c, err := build(mode.nodes, mode.slots)
		if err != nil {
			return nil, err
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 40000, Seed: seed}); err != nil {
			return nil, err
		}
		rep, err := c.Run(jobs.AirlineAvgDelayCombiner("/in", "/out"))
		if err != nil {
			return nil, err
		}
		times[mode.label] = rep.Makespan()
		text, err := c.Output("/out")
		if err != nil {
			return nil, err
		}
		outputs[mode.label] = text
	}
	serialT := times["standalone (1 node, 1 slot)"]
	clusterT := times["8-node HDFS cluster"]
	res := &E5Result{
		SerialTime:  serialT,
		ClusterTime: clusterT,
		Speedup:     float64(serialT) / float64(clusterT),
		SameAnswer:  outputs["standalone (1 node, 1 slot)"] == outputs["8-node HDFS cluster"],
	}
	return &Result{
		ID:     "E5",
		Title:  "Same jar, standalone vs HDFS cluster (assignment 2 part 1)",
		Header: []string{"mode", "makespan"},
		Rows: [][]string{
			{"standalone (1 node, 1 slot)", fmtDur(serialT)},
			{"8-node HDFS cluster", fmtDur(clusterT)},
			{"speedup", fmt.Sprintf("%.2fx", res.Speedup)},
			{"identical output", fmt.Sprintf("%v", res.SameAnswer)},
		},
		Raw: res,
	}, nil
}

package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mrcluster"
	"repro/internal/sim"
)

// MeltdownResult is the structured outcome of E1.
type MeltdownResult struct {
	Students   int
	Faulty     int
	Completed  int
	FailedJobs int
	Unfinished int

	DeadTaskTrackers int
	DeadDataNodes    int

	UnderReplicatedAtDeadline int
	MissingAtDeadline         int
	CorruptedCluster          bool

	RecoveryTime        time.Duration
	HealthyAfterRestart bool
}

// CompletedFraction returns the share of students whose job finished.
func (m *MeltdownResult) CompletedFraction() float64 {
	if m.Students == 0 {
		return 0
	}
	return float64(m.Completed) / float64(m.Students)
}

// E1Meltdown replays the paper's Fall 2012 story: ~35 students, a
// deadline, procrastination-skewed submissions, and buggy jobs whose heap
// leaks crash the TaskTracker and DataNode daemons. The cluster
// accumulates under-replicated blocks, eventually "stops all the new
// jobs", and after a full restart takes ~15 minutes of DataNode integrity
// scans before the NameNode leaves safe mode. By the end of the semester
// only about one third of the students had completed the assignment.
func E1Meltdown(seed int64) (*Result, error) {
	const (
		students     = 35
		faultyRate   = 0.2
		window       = 4 * time.Hour
		grace        = 15 * time.Minute
		preloadBytes = int64(100) << 30 // course datasets preloaded per node
	)
	c, err := core.New(core.Options{
		Nodes: 8,
		Seed:  seed,
		HDFS: hdfs.Config{
			BlockSize:         32 << 10,
			Replication:       3,
			HeartbeatInterval: 3 * time.Second,
			HeartbeatExpiry:   30 * time.Second,
		},
		MR: withHeartbeats(expMRConfig(), 3*time.Second, 30*time.Second),
	})
	if err != nil {
		return nil, err
	}
	// Production-scale replay: 35 jobs, fault-driven resubmissions, tens
	// of attempts each. Head-sample 1-in-8 job traces — keep-everything is
	// the teaching default; a deadline crunch is where sampling earns its
	// keep (unsampled jobs still record their flat spans as before).
	c.Obs.SetTraceSampling(8)
	for _, dn := range c.DFS.DataNodes() {
		dn.SetPreloadedBytes(preloadBytes)
	}
	if _, _, err := datagen.Trace(c.FS(), "/data/trace/task_events.csv",
		datagen.TraceOpts{Jobs: 40, MeanTasks: 20, Seed: seed}); err != nil {
		return nil, err
	}

	rng := sim.NewRand(seed).Derive("students")
	res := &MeltdownResult{Students: students}
	handles := make([]*mrcluster.JobHandle, students)
	base := c.Engine.Now()
	for i := 0; i < students; i++ {
		// Procrastination: sqrt(u) concentrates submissions at the deadline.
		u := rng.Float64()
		at := base + time.Duration(float64(window)*math.Sqrt(u))
		name := fmt.Sprintf("trace-s%02d", i)
		if rng.Bernoulli(faultyRate) {
			res.Faulty++
			c.MR.InjectTaskFault(mrcluster.TaskFault{
				JobName:       name,
				Scope:         mrcluster.ScopeMap,
				Probability:   0.7,
				AfterFraction: 0.7,
				CrashDaemons:  true,
			})
		}
		idx := i
		c.Engine.Schedule(at, func() {
			job := jobs.TraceMaxResubmissions("/data/trace", fmt.Sprintf("/out/s%02d", idx))
			job.Name = name
			h, err := c.MR.Submit(job)
			if err == nil {
				handles[idx] = h
			}
		})
	}

	// Run the deadline window plus grading grace.
	c.Engine.RunUntil(base + window + grace)

	for _, h := range handles {
		switch {
		case h == nil:
			res.Unfinished++
		case !h.Done():
			res.Unfinished++
		case h.Err() != nil:
			res.FailedJobs++
		default:
			res.Completed++
		}
	}
	for _, tt := range c.MR.TaskTrackers() {
		if !tt.Alive() {
			res.DeadTaskTrackers++
		}
	}
	for _, dn := range c.DFS.DataNodes() {
		if !dn.Alive() {
			res.DeadDataNodes++
		}
	}
	fsck, err := c.Fsck()
	if err != nil {
		return nil, err
	}
	res.UnderReplicatedAtDeadline = fsck.UnderReplicated
	res.MissingAtDeadline = fsck.MissingBlocks
	res.CorruptedCluster = !fsck.Healthy()

	// Full cluster restart: every daemon comes down and back up; each
	// DataNode re-verifies its (100 GB) local data before reporting.
	restartAt := c.Engine.Now()
	for _, dn := range c.DFS.DataNodes() {
		dn.Kill()
	}
	for _, tt := range c.MR.TaskTrackers() {
		c.MR.KillTaskTracker(tt.ID())
	}
	c.DFS.NN.Restart()
	for _, dn := range c.DFS.DataNodes() {
		dn.Start()
	}
	for _, tt := range c.MR.TaskTrackers() {
		c.MR.StartTaskTracker(tt.ID())
	}
	for i := 0; i < 240 && c.DFS.NN.InSafeMode(); i++ {
		c.Engine.Advance(15 * time.Second)
	}
	if !c.DFS.NN.InSafeMode() {
		res.RecoveryTime = c.DFS.NN.SafeModeExitedAt() - restartAt
	}
	c.Engine.Advance(2 * time.Minute) // let the replication monitor settle
	fsck2, err := c.Fsck()
	if err != nil {
		return nil, err
	}
	res.HealthyAfterRestart = fsck2.Healthy()

	out := &Result{
		ID:     "E1",
		Title:  "Deadline meltdown: 35 students, buggy jobs crash TaskTracker+DataNode daemons",
		Header: []string{"metric", "value", "paper says"},
		Raw:    res,
	}
	addRow := func(metric, value, paper string) {
		out.Rows = append(out.Rows, []string{metric, value, paper})
	}
	addRow("students / faulty jobs", fmt.Sprintf("%d / %d", res.Students, res.Faulty), "large number waited until the last day")
	addRow("jobs completed", fmt.Sprintf("%d (%.0f%%)", res.Completed, 100*res.CompletedFraction()), "only about one third completed")
	addRow("jobs failed", fmt.Sprintf("%d", res.FailedJobs), "run time errors ... crashed the daemons")
	addRow("jobs never finished", fmt.Sprintf("%d", res.Unfinished), "corrupted cluster stopped all the new jobs")
	addRow("dead TaskTrackers / DataNodes", fmt.Sprintf("%d / %d", res.DeadTaskTrackers, res.DeadDataNodes), "crashed the task tracker and data node daemons")
	addRow("under-replicated blocks at deadline", fmt.Sprintf("%d", res.UnderReplicatedAtDeadline), "additional under-replicated data blocks")
	addRow("missing blocks at deadline", fmt.Sprintf("%d", res.MissingAtDeadline), "corrupted Hadoop cluster")
	addRow("restart -> safe-mode exit", fmtDur(res.RecoveryTime), "at least fifteen minutes ... to check data integrity")
	addRow("healthy after full restart", fmt.Sprintf("%v", res.HealthyAfterRestart), "data survived; availability did not")
	return out, nil
}

func withHeartbeats(cfg mrcluster.Config, hb, expiry time.Duration) mrcluster.Config {
	cfg.HeartbeatInterval = hb
	cfg.TrackerExpiry = expiry
	return cfg
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/regionserver"
)

// E13 benchmarks the online-serving tier the way the HiBench/Cassandra
// benchmarking literature does: YCSB-style core workload mixes A (50/50
// read/update), B (95/5), C (read-only), and E (scan-heavy) against 4
// region servers, each mix run twice — straight to the region servers,
// and through the front-line cache tier — reporting ops/sec and
// p50/p99/p999 latency. A final scenario crashes the hottest region's
// server mid-workload and measures detection + WAL-replay + reassignment
// recovery, verifying that no acknowledged write is lost.

// E13MixStats is one (mix, cache) run.
type E13MixStats struct {
	Mix          string
	Cache        bool
	Ops          int
	Errors       int
	OpsPerSec    float64
	P50          time.Duration
	P99          time.Duration
	P999         time.Duration
	CacheHitRate float64
	Splits       int
	RegionsFinal int
}

// E13CrashStats is the server-crash recovery scenario.
type E13CrashStats struct {
	OpsPerSec       float64
	P99             time.Duration
	P999            time.Duration
	Errors          int
	Reassigns       int
	RecoverySeconds float64
	VerifiedWrites  int
	LostAckedWrites int
}

// E13Result is the structured outcome of E13.
type E13Result struct {
	Servers  int
	Records  int
	OpsEach  int
	Clients  int
	PreSplit int
	Runs     []E13MixStats
	Crash    E13CrashStats
}

// Run returns the stats row for one (mix, cache) combination.
func (r *E13Result) Run(mix string, cache bool) E13MixStats {
	for _, s := range r.Runs {
		if s.Mix == mix && s.Cache == cache {
			return s
		}
	}
	return E13MixStats{Mix: mix, Cache: cache}
}

// E13Opts scales the benchmark; the zero value is the full experiment.
type E13Opts struct {
	Records int // initial rows (default 4000)
	Ops     int // ops per mix (default 12000)
	Clients int // closed-loop clients (default 32)
	Servers int // region servers (default 4)
}

func (o *E13Opts) defaults() {
	if o.Records <= 0 {
		o.Records = 4000
	}
	if o.Ops <= 0 {
		o.Ops = 12000
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.Servers <= 0 {
		o.Servers = 4
	}
}

// e13Mixes are the YCSB core workloads E13 sweeps.
var e13Mixes = []string{"a", "b", "c", "e"}

func e13Bench(seed int64, o E13Opts, mix string, cache, crash bool) (*regionserver.BenchResult, error) {
	return regionserver.BenchRun(regionserver.BenchOpts{
		Mix:     mix,
		Records: o.Records,
		Ops:     o.Ops,
		Clients: o.Clients,
		Servers: o.Servers,
		Cache:   cache,
		Seed:    seed,
		Crash:   crash,
	})
}

// E13Scaled runs the serving benchmark at a chosen scale.
func E13Scaled(seed int64, o E13Opts) (*Result, error) {
	o.defaults()
	res := &E13Result{
		Servers: o.Servers,
		Records: o.Records,
		OpsEach: o.Ops,
		Clients: o.Clients,
	}
	for _, mix := range e13Mixes {
		for _, cache := range []bool{false, true} {
			br, err := e13Bench(seed, o, mix, cache, false)
			if err != nil {
				return nil, fmt.Errorf("e13 mix %s cache=%v: %w", mix, cache, err)
			}
			if br.LostAckedWrites > 0 {
				return nil, fmt.Errorf("e13 mix %s cache=%v: %d acked writes lost", mix, cache, br.LostAckedWrites)
			}
			res.Runs = append(res.Runs, E13MixStats{
				Mix: mix, Cache: cache,
				Ops: br.Ops, Errors: br.Errors,
				OpsPerSec: br.OpsPerSec,
				P50:       br.P50, P99: br.P99, P999: br.P999,
				CacheHitRate: br.CacheHitRate,
				Splits:       br.Splits,
				RegionsFinal: br.RegionsFinal,
			})
		}
	}
	// Crash scenario: workload A through the cache tier, hottest server
	// killed mid-run.
	cr, err := e13Bench(seed, o, "a", true, true)
	if err != nil {
		return nil, fmt.Errorf("e13 crash scenario: %w", err)
	}
	res.Crash = E13CrashStats{
		OpsPerSec:       cr.OpsPerSec,
		P99:             cr.P99,
		P999:            cr.P999,
		Errors:          cr.Errors,
		Reassigns:       cr.Reassigns,
		RecoverySeconds: cr.RecoverySeconds,
		VerifiedWrites:  cr.VerifiedWrites,
		LostAckedWrites: cr.LostAckedWrites,
	}

	out := &Result{
		ID: "E13",
		Title: fmt.Sprintf("Online serving: YCSB mixes on %d region servers, with and without the cache tier (%d rows, %d ops/mix, %d clients)",
			o.Servers, o.Records, o.Ops, o.Clients),
		Header: []string{"mix", "cache", "ops/sec", "p50", "p99", "p999", "hit rate", "splits", "regions"},
		Raw:    res,
	}
	for _, s := range res.Runs {
		hit := ""
		if s.Cache {
			hit = fmt.Sprintf("%.0f%%", 100*s.CacheHitRate)
		}
		out.Rows = append(out.Rows, []string{
			s.Mix, fmt.Sprint(s.Cache), fmt.Sprintf("%.0f", s.OpsPerSec),
			fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.P999),
			hit, fmt.Sprint(s.Splits), fmt.Sprint(s.RegionsFinal),
		})
	}
	for _, mix := range e13Mixes {
		plain, cached := res.Run(mix, false), res.Run(mix, true)
		if plain.OpsPerSec > 0 {
			out.Notes = append(out.Notes, fmt.Sprintf(
				"workload %s: %.0f -> %.0f ops/sec through the cache tier (%.1fx, hit rate %.0f%%)",
				mix, plain.OpsPerSec, cached.OpsPerSec, cached.OpsPerSec/plain.OpsPerSec,
				100*cached.CacheHitRate))
		}
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"crash scenario: server killed mid-run; %d regions reassigned after WAL replay in %.2fs; %d/%d acked writes verified, %d lost",
		res.Crash.Reassigns, res.Crash.RecoverySeconds,
		res.Crash.VerifiedWrites, res.Crash.VerifiedWrites+res.Crash.LostAckedWrites,
		res.Crash.LostAckedWrites))
	return out, nil
}

// E13Serving is the registry entry: the full-scale benchmark.
func E13Serving(seed int64) (*Result, error) {
	return E13Scaled(seed, E13Opts{})
}

// E13ReplayArtifacts runs the crash scenario once and returns the byte
// artifacts the determinism tests compare across runs: the master's META
// event log and the obs snapshot.
func E13ReplayArtifacts(seed int64, o E13Opts) (metaLog, obsSnap []byte, err error) {
	o.defaults()
	br, err := e13Bench(seed, o, "a", true, true)
	if err != nil {
		return nil, nil, err
	}
	return br.MetaLog, br.Snap, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datagen"
)

// TestE12Smoke is the CI gate on the multi-tenant replay: a
// hundreds-of-apps version of E12 (the full registry entry replays
// 1,200) that must drain in both scheduling modes and keep the
// experiment's qualitative shape — every tenant's apps finish, and the
// capacity scheduler does not leave the students queue worse off than
// FIFO under the deadline bunching.
func TestE12Smoke(t *testing.T) {
	res, err := E12Scaled(7, E12Opts{Apps: 240, Students: 70})
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := res.Raw.(*E12Result)
	if !ok {
		t.Fatalf("E12 Raw is %T, want *E12Result", res.Raw)
	}
	if raw.Apps != 240 {
		t.Fatalf("workload has %d apps, want 240", raw.Apps)
	}
	if raw.Students != 70 {
		t.Fatalf("workload has %d student apps, want 70", raw.Students)
	}
	for _, s := range []*E12RunStats{&raw.FIFO, &raw.Capacity} {
		total := 0
		for _, q := range s.Queues {
			if q.Apps == 0 {
				t.Fatalf("tenant %s has no apps in the replay", q.Queue)
			}
			if q.P99 < q.P50 {
				t.Fatalf("tenant %s: p99 %v < p50 %v", q.Queue, q.P99, q.P50)
			}
			total += q.Apps
		}
		if total != raw.Apps {
			t.Fatalf("per-tenant apps sum to %d, want %d", total, raw.Apps)
		}
		if s.Makespan <= 0 || s.NodeHours <= 0 {
			t.Fatalf("degenerate run stats: %+v", s)
		}
	}
	fifoP99 := raw.FIFO.QueueStats(datagen.QueueStudents).P99
	capP99 := raw.Capacity.QueueStats(datagen.QueueStudents).P99
	if capP99 > fifoP99 {
		t.Fatalf("capacity scheduling made students p99 worse: fifo %v, capacity %v", fifoP99, capP99)
	}
	// Autoscaling must not cost more node-hours than the fixed FIFO pool.
	if raw.Capacity.NodeHours > raw.FIFO.NodeHours {
		t.Fatalf("autoscaled pool burned %.1f node-hours vs %.1f fixed", raw.Capacity.NodeHours, raw.FIFO.NodeHours)
	}
}

// TestE12TraceReplayDeterministic replays the trace workload through the
// capacity scheduler twice per seed and demands byte-identical artifacts:
// the scheduler's history event log and the obs snapshot. One seed runs
// at the full 1,200-app trace scale; the others at smoke scale. Any
// wall-clock read, shared rand, or map-ordered decision anywhere in the
// scheduler, preemption monitor, or autoscaler breaks this test.
func TestE12TraceReplayDeterministic(t *testing.T) {
	cases := []struct {
		seed int64
		opts E12Opts
	}{
		{seed: 1234, opts: E12Opts{}}, // full 1,200-app trace
		{seed: 7, opts: E12Opts{Apps: 200, Students: 60}},
		{seed: 99, opts: E12Opts{Apps: 200, Students: 60}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprint(tc.seed), func(t *testing.T) {
			if testing.Short() && tc.opts == (E12Opts{}) {
				t.Skip("tier-2: full-scale replay skipped in -short mode")
			}
			log1, snap1, err := E12ReplayArtifacts(tc.seed, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			log2, snap2, err := E12ReplayArtifacts(tc.seed, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(log1) == 0 {
				t.Fatal("replay produced an empty scheduler event log")
			}
			if !bytes.Equal(log1, log2) {
				t.Fatalf("scheduler event logs differ between identical replays (%d vs %d bytes)", len(log1), len(log2))
			}
			if !bytes.Equal(snap1, snap2) {
				t.Fatalf("obs snapshots differ between identical replays (%d vs %d bytes)", len(snap1), len(snap2))
			}
		})
	}
}

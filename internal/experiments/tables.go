package experiments

import (
	"repro/internal/curriculum"
	"repro/internal/survey"
)

// Table1 regenerates the paper's Table I (proficiency before/after).
func Table1(seed int64) (*Result, error) {
	return &Result{
		ID:    "T1",
		Title: "Level of Proficiency (0 to 10), published vs synthesized cohort",
		Text:  survey.RenderTableI(),
		Raw:   survey.TableI,
		Notes: []string{
			"survey data cannot be re-run; cohorts are synthesized to the published moments (see DESIGN.md §4)",
		},
	}, nil
}

// Table2 regenerates Table II (time to complete).
func Table2(seed int64) (*Result, error) {
	return &Result{
		ID:    "T2",
		Title: "Time to Complete",
		Text:  survey.RenderTableII(),
		Raw:   survey.TableII,
	}, nil
}

// Table3 regenerates Table III (helpfulness).
func Table3(seed int64) (*Result, error) {
	return &Result{
		ID:    "T3",
		Title: "Helpfulness of Lectures and Tutorials",
		Text:  survey.RenderTableIII(),
		Raw:   survey.TableIII,
	}, nil
}

// Table4 regenerates Table IV (lowest level to teach).
func Table4(seed int64) (*Result, error) {
	return &Result{
		ID:    "T4",
		Title: "Lowest level of CS course to introduce Hadoop MapReduce",
		Text:  survey.RenderTableIV(),
		Raw:   survey.TableIV,
	}, nil
}

// Table5 regenerates Table V (curriculum mapping), each outcome linked to
// the module of this reproduction that demonstrates it.
func Table5(seed int64) (*Result, error) {
	return &Result{
		ID:    "T5",
		Title: "PDC learning outcomes",
		Text:  curriculum.Render(),
		Raw:   curriculum.TableV,
	}, nil
}

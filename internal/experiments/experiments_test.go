package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const testSeed = 1234

func TestRegistryComplete(t *testing.T) {
	want := []string{"FIG1", "FIG2", "T1", "T2", "T3", "T4", "T5",
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	specs := Registry()
	if len(specs) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(specs), len(want))
	}
	for i, id := range want {
		if specs[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, specs[i].ID, id)
		}
	}
	if _, ok := Lookup("e4"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestFig1LocalityWinsAndHPCSaturates(t *testing.T) {
	r, err := Fig1(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*Fig1Result)
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Hadoop layout keeps scaling 1 -> 16 nodes.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.HadoopMakespan >= first.HadoopMakespan {
		t.Fatalf("hadoop layout did not scale: %v -> %v", first.HadoopMakespan, last.HadoopMakespan)
	}
	// At scale, the shared-storage layout is clearly slower.
	if last.Slowdown < 1.5 {
		t.Fatalf("HPC layout should fall behind at 16 nodes, slowdown=%.2f\n%s", last.Slowdown, r)
	}
	// And the gap widens with node count (storage saturation).
	if last.Slowdown <= first.Slowdown {
		t.Fatalf("slowdown should grow with nodes: %.2f -> %.2f", first.Slowdown, last.Slowdown)
	}
	if last.LocalityPercent < 80 {
		t.Fatalf("hadoop layout locality = %.0f%%", last.LocalityPercent)
	}
}

func TestFig2RendersComponents(t *testing.T) {
	r, err := Fig2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[NameNode]", "[JobTracker]", "blk_", "file01.txt", "TaskTracker[up]"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("FIG2 missing %q", want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for _, id := range []string{"T1", "T2", "T3", "T4", "T5"} {
		spec, _ := Lookup(id)
		r, err := spec.Run(testSeed)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.String()) < 80 {
			t.Fatalf("%s output too small:\n%s", id, r)
		}
	}
}

func TestE1MeltdownShape(t *testing.T) {
	r, err := E1Meltdown(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*MeltdownResult)
	if res.Students != 35 {
		t.Fatalf("students = %d", res.Students)
	}
	// Paper: "only about one third of the students ... were able to
	// complete the second assignment". Accept a band around 1/3.
	if f := res.CompletedFraction(); f < 0.15 || f > 0.6 {
		t.Fatalf("completed fraction = %.2f, want roughly one third\n%s", f, r)
	}
	if res.DeadTaskTrackers == 0 || res.DeadDataNodes == 0 {
		t.Fatalf("no daemons died in the meltdown\n%s", r)
	}
	if res.UnderReplicatedAtDeadline == 0 && res.MissingAtDeadline == 0 {
		t.Fatalf("no replication damage at deadline\n%s", r)
	}
	// Paper: "at least fifteen minutes" for data-integrity checks.
	if res.RecoveryTime < 10*time.Minute || res.RecoveryTime > 30*time.Minute {
		t.Fatalf("recovery time = %v, want ≈15 minutes", res.RecoveryTime)
	}
	if !res.HealthyAfterRestart {
		t.Fatal("cluster did not heal after full restart")
	}
}

func TestE2CombinerTradeoffShape(t *testing.T) {
	r, err := E2Combiner(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E2Result)
	if res.Combiner.ShuffleBytes*5 > res.Plain.ShuffleBytes {
		t.Fatalf("combiner shuffle not ≥5x smaller: %d vs %d",
			res.Combiner.ShuffleBytes, res.Plain.ShuffleBytes)
	}
	if res.Combiner.MapPhase <= res.Plain.MapPhase {
		t.Fatalf("combiner map phase should be longer: %v vs %v",
			res.Combiner.MapPhase, res.Plain.MapPhase)
	}
	if res.Combiner.ReducePhase >= res.Plain.ReducePhase {
		t.Fatalf("combiner reduce phase should shrink: %v vs %v",
			res.Combiner.ReducePhase, res.Plain.ReducePhase)
	}
}

func TestE3AirlineVariantShape(t *testing.T) {
	r, err := E3Airline(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E3Result)
	if !(res.Plain.ShuffleBytes > res.Combiner.ShuffleBytes) {
		t.Fatalf("plain should shuffle most: %d vs %d", res.Plain.ShuffleBytes, res.Combiner.ShuffleBytes)
	}
	if !(res.Combiner.ShuffleBytes >= res.InMapper.ShuffleBytes) {
		t.Fatalf("in-mapper should shuffle least: %d vs %d", res.Combiner.ShuffleBytes, res.InMapper.ShuffleBytes)
	}
	if res.InMapper.MemoryPeak == 0 || res.Plain.MemoryPeak != 0 {
		t.Fatalf("memory trade-off missing: imc=%d plain=%d", res.InMapper.MemoryPeak, res.Plain.MemoryPeak)
	}
	if res.Plain.Makespan <= res.Combiner.Makespan {
		t.Fatalf("plain should be slowest end to end: %v vs %v", res.Plain.Makespan, res.Combiner.Makespan)
	}
}

func TestE4SideDataOrderOfMagnitude(t *testing.T) {
	r, err := E4SideData(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E4Result)
	if res.Ratio < 10 {
		t.Fatalf("naive/cached ratio = %.1f, want ≥10 (\"one order of magnitude\")\n%s", res.Ratio, r)
	}
	if res.Naive.SideOpens <= res.Cached.SideOpens {
		t.Fatal("naive variant should open the side file far more often")
	}
	// Ablation: the DistributedCache removes the repeated HDFS reads
	// (big win over naive) but keeps the repeated parsing CPU (still
	// slower than the cached pattern).
	if res.NaiveDistCache.Makespan >= res.Naive.Makespan {
		t.Fatalf("DistributedCache did not help the naive pattern: %v vs %v",
			res.NaiveDistCache.Makespan, res.Naive.Makespan)
	}
	if res.NaiveDistCache.Makespan <= res.Cached.Makespan {
		t.Fatalf("DistributedCache should not beat the cached pattern: %v vs %v",
			res.NaiveDistCache.Makespan, res.Cached.Makespan)
	}
}

func TestE5SpeedupAndEquivalence(t *testing.T) {
	r, err := E5SerialVsCluster(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E5Result)
	if !res.SameAnswer {
		t.Fatal("cluster run changed the answer")
	}
	if res.Speedup < 2 {
		t.Fatalf("cluster speedup only %.2fx", res.Speedup)
	}
}

func TestE6CleanupIntervalMonotone(t *testing.T) {
	r, err := E6GhostDaemons(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E6Result)
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.Cleanup != time.Minute || last.Cleanup != 30*time.Minute {
		t.Fatalf("sweep bounds: %v .. %v", first.Cleanup, last.Cleanup)
	}
	if !(first.FailureRate <= last.FailureRate) {
		t.Fatalf("failure rate should not decrease with slower cleanup: %.2f .. %.2f\n%s",
			first.FailureRate, last.FailureRate, r)
	}
	if last.GhostFailures == 0 {
		t.Fatalf("30-minute cleanup produced no ghost failures\n%s", r)
	}
}

func TestE7StagingAnchors(t *testing.T) {
	r, err := E7Staging(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E7Result)
	byName := map[string]time.Duration{}
	for _, p := range res.Points {
		byName[p.Dataset] = p.Staging
	}
	if g := byName["Google cluster trace"]; g < time.Hour {
		t.Fatalf("171 GB staging = %v, paper says over an hour", g)
	}
	if y := byName["Yahoo! Music (assignment 2)"]; y >= 5*time.Minute {
		t.Fatalf("10 GB staging = %v, paper says under five minutes", y)
	}
	// Monotone in size.
	var prev time.Duration
	for _, p := range res.Points {
		if p.Staging < prev {
			t.Fatal("staging time not monotone in size")
		}
		prev = p.Staging
	}
}

func TestStagingTimeMatchesRealClientSmall(t *testing.T) {
	// Cross-check the analytic formula against the real client's meter on
	// a small file.
	cm := cluster.DefaultCostModel()
	want := StagingTime(4<<20, 1<<20, cm)
	got := realStagingCost(t, 4<<20, 1<<20)
	ratio := float64(got) / float64(want)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("analytic %v vs real client %v (ratio %.2f)", want, got, ratio)
	}
}

func TestE8TranscriptShowsRecovery(t *testing.T) {
	r, err := E8FsckRecovery(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E8Result)
	if res.UnderReplicatedAfterKill == 0 {
		t.Fatalf("datanode loss caused no under-replication\n%s", res.Transcript)
	}
	if !res.HealthyAfterRecovery {
		t.Fatalf("cluster did not recover\n%s", res.Transcript)
	}
	for _, want := range []string{"Under-replicated blocks", "is HEALTHY", "blk_", "Replication 2 set"} {
		if !strings.Contains(res.Transcript, want) {
			t.Fatalf("transcript missing %q", want)
		}
	}
}

func TestE9ScalabilityShape(t *testing.T) {
	r, err := E9Scalability(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E9Result)
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	last := res.Points[len(res.Points)-1]
	if last.Speedup < 3 {
		t.Fatalf("16-node speedup = %.2fx, want ≥3x\n%s", last.Speedup, r)
	}
	// Monotone non-decreasing speedup.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Speedup < res.Points[i-1].Speedup*0.9 {
			t.Fatalf("speedup regressed at %d nodes\n%s", res.Points[i].Nodes, r)
		}
	}
	if res.SpeculationGain <= 1 {
		t.Fatalf("speculation gain = %.2f, want >1\n%s", res.SpeculationGain, r)
	}
}

func TestE10FormatShape(t *testing.T) {
	r, err := E10Formats(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E10Result)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	text, gz, seq := res.e10Format("text"), res.e10Format("gz"), res.e10Format("seq-gzip")
	if gz.MapTasks != 1 {
		t.Fatalf("gz corpus scheduled %d maps, want exactly 1\n%s", gz.MapTasks, r)
	}
	if seq.MapTasks < 4 {
		t.Fatalf("seq-gzip corpus scheduled %d maps, want ≥4\n%s", seq.MapTasks, r)
	}
	if gz.FileBytes >= text.FileBytes || seq.FileBytes >= text.FileBytes {
		t.Fatalf("compression did not shrink storage\n%s", r)
	}
	if seq.BytesRead >= text.BytesRead {
		t.Fatalf("seq read %d bytes, text %d: compression should cut disk reads\n%s",
			seq.BytesRead, text.BytesRead, r)
	}
	if seq.Makespan >= gz.Makespan {
		t.Fatalf("seq makespan %v not better than single-map gz %v\n%s", seq.Makespan, gz.Makespan, r)
	}
	if res.ShuffleWireBytes >= res.ShuffleRawBytes {
		t.Fatalf("shuffle compression grew the wire: %d -> %d\n%s",
			res.ShuffleRawBytes, res.ShuffleWireBytes, r)
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note here"},
	}
	s := r.String()
	for _, want := range []string{"=== X: demo ===", "a    bbbb", "333", "note: note here"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

// realStagingCost stages size real bytes through the HDFS client and
// returns the metered write time.
func realStagingCost(t *testing.T, size, blockSize int64) time.Duration {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(8, 1))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 1, Config: hdfs.Config{BlockSize: blockSize}})
	if err != nil {
		t.Fatal(err)
	}
	c := dfs.Client(hdfs.GatewayNode)
	if err := vfs.WriteFile(c, "/f", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	return c.Meter.WriteTime
}

func TestE9PlacementAblation(t *testing.T) {
	r, err := E9Scalability(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Raw.(*E9Result)
	// The default policy guarantees every block spans two racks; random
	// placement confines a sizeable fraction to one rack and loses those
	// blocks when that rack fails.
	if res.RackRedundantDefaultPct != 100 {
		t.Fatalf("default policy rack-redundant = %.0f%%, want 100%%", res.RackRedundantDefaultPct)
	}
	if res.RackRedundantRandomPct >= 95 {
		t.Fatalf("random placement rack-redundant = %.0f%%, suspiciously high", res.RackRedundantRandomPct)
	}
	if res.MissingAfterRackLossDefault != 0 {
		t.Fatalf("default policy lost %d blocks to a rack failure", res.MissingAfterRackLossDefault)
	}
	if res.MissingAfterRackLossRandom == 0 {
		t.Fatal("random placement should lose blocks to a rack failure")
	}
}

func TestE1RobustAcrossSeeds(t *testing.T) {
	// The meltdown's qualitative shape must not depend on one lucky seed:
	// daemons die, replication is damaged, and completion stays well below
	// 100% for any seed.
	for _, seed := range []int64{1, 99, 2026} {
		r, err := E1Meltdown(seed)
		if err != nil {
			t.Fatal(err)
		}
		res := r.Raw.(*MeltdownResult)
		if res.DeadDataNodes == 0 {
			t.Fatalf("seed %d: no DataNodes died", seed)
		}
		if f := res.CompletedFraction(); f > 0.8 {
			t.Fatalf("seed %d: completion %.2f — meltdown did not bite", seed, f)
		}
		if res.RecoveryTime < 5*time.Minute {
			t.Fatalf("seed %d: recovery only %v", seed, res.RecoveryTime)
		}
	}
}

// Package kvstore is a teaching-scale HBase: a sorted, versioned
// key-value store layered on HDFS, matching the architecture covered by
// the course's HBase/Hive lecture (Fall 2013 added "one lecture
// introducing HBase/Hive ... to provide a more comprehensive view of the
// Hadoop ecosystem"). It implements the essential mechanics — a
// write-ahead log on HDFS, an in-memory MemStore, sorted immutable
// store files (HFiles) flushed to HDFS, read-path merging across
// MemStore and store files, tombstone deletes, minor compaction, and
// range scans — over any vfs.FileSystem, so a table survives whatever
// the underlying DFS survives.
//
// The store is the storage engine of the online serving tier
// (internal/regionserver): a region is one Table hosting a contiguous
// row-key range. Serving-scale demands shape two mechanisms here:
//
//   - The WAL is a directory of capped segment files (vfs has no append
//     mode, so an append rewrites a file — capping the segment bounds
//     the rewrite at WALSegmentBytes instead of the whole log).
//     Recovery replays segments in order and tolerates a torn final
//     record, the crash-mid-append case.
//   - Store files parse once into an in-memory file cache (the block
//     cache at teaching scale), so point reads cost a binary search,
//     not a re-read of every HFile.
package kvstore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// ErrNotFound is returned by Get for absent (or deleted) keys.
var ErrNotFound = errors.New("kvstore: key not found")

// Metric names emitted when a table is given an obs registry. The full
// taxonomy is documented in docs/OBSERVABILITY.md.
const (
	MetricPuts           = "kv.puts"
	MetricDeletes        = "kv.deletes"
	MetricGets           = "kv.gets"
	MetricScans          = "kv.scans"
	MetricFlushes        = "kv.flushes"
	MetricFlushBytes     = "kv.flush_bytes"
	MetricCompactions    = "kv.compactions"
	MetricCompactBytes   = "kv.compact_bytes"
	MetricWALAppends     = "kv.wal_appends"
	MetricWALBytes       = "kv.wal_bytes"
	MetricWALReplayed    = "kv.wal_replayed_records"
	MetricWALTornDrops   = "kv.wal_torn_drops"
	MetricBulkLoads      = "kv.bulk_loads"
	MetricStoreFileReads = "kv.store_file_reads"
)

// kvMetrics holds a table's interned metric handles (all nil-safe).
type kvMetrics struct {
	puts           *obs.Counter
	deletes        *obs.Counter
	gets           *obs.Counter
	scans          *obs.Counter
	flushes        *obs.Counter
	flushBytes     *obs.Counter
	compactions    *obs.Counter
	compactBytes   *obs.Counter
	walAppends     *obs.Counter
	walBytes       *obs.Counter
	walReplayed    *obs.Counter
	walTornDrops   *obs.Counter
	bulkLoads      *obs.Counter
	storeFileReads *obs.Counter
}

func newKVMetrics(r *obs.Registry) kvMetrics {
	return kvMetrics{
		puts:           r.Counter(MetricPuts),
		deletes:        r.Counter(MetricDeletes),
		gets:           r.Counter(MetricGets),
		scans:          r.Counter(MetricScans),
		flushes:        r.Counter(MetricFlushes),
		flushBytes:     r.Counter(MetricFlushBytes),
		compactions:    r.Counter(MetricCompactions),
		compactBytes:   r.Counter(MetricCompactBytes),
		walAppends:     r.Counter(MetricWALAppends),
		walBytes:       r.Counter(MetricWALBytes),
		walReplayed:    r.Counter(MetricWALReplayed),
		walTornDrops:   r.Counter(MetricWALTornDrops),
		bulkLoads:      r.Counter(MetricBulkLoads),
		storeFileReads: r.Counter(MetricStoreFileReads),
	}
}

// Config tunes a table.
type Config struct {
	// FlushThresholdBytes triggers a MemStore flush (default 64 KiB —
	// teaching scale).
	FlushThresholdBytes int64
	// CompactTrigger is the store-file count that triggers a minor
	// compaction (default 4).
	CompactTrigger int
	// WALSegmentBytes caps one WAL segment file (default 8 KiB). vfs has
	// no append mode, so appending a record rewrites the current segment;
	// the cap bounds that rewrite, making per-mutation I/O O(segment)
	// instead of O(whole log).
	WALSegmentBytes int64
	// Obs, when set, receives the table's kv.* metric stream.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.FlushThresholdBytes <= 0 {
		c.FlushThresholdBytes = 64 << 10
	}
	if c.CompactTrigger <= 0 {
		c.CompactTrigger = 4
	}
	if c.WALSegmentBytes <= 0 {
		c.WALSegmentBytes = 8 << 10
	}
	return c
}

// cell is one versioned value; tombstone marks a delete.
type cell struct {
	seq       uint64
	value     []byte
	tombstone bool
}

// Table is one HBase-style table rooted at a directory of the backing
// filesystem:
//
//	<root>/wal.d/NNNNNN   capped write-ahead-log segments
//	<root>/hfiles/NNNNNN  sorted immutable store files
type Table struct {
	fs   vfs.FileSystem
	root string
	cfg  Config
	m    kvMetrics

	mem      map[string]cell
	memBytes int64
	seq      uint64
	nextFile int

	// files is the in-memory list of store-file paths, oldest first,
	// kept in sync with the hfiles directory; fileCache holds their
	// parsed, sorted entries (invalidated when a file is removed).
	files     []string
	fileCache map[string][]entry
	diskBytes int64

	// walSeg is the current WAL segment number; walBuf mirrors the
	// current segment's content so an append rewrites it without a
	// read-back.
	walSeg int
	walBuf []byte

	// Flushes and Compactions count maintenance operations for tests and
	// the lecture demo.
	Flushes     int
	Compactions int
}

// Open creates or reopens a table at root. Reopening replays the WAL into
// the MemStore and discovers existing store files — the recovery path.
func Open(fs vfs.FileSystem, root string, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		fs:        fs,
		root:      vfs.Clean(root),
		cfg:       cfg,
		m:         newKVMetrics(cfg.Obs),
		mem:       map[string]cell{},
		fileCache: map[string][]entry{},
	}
	if err := fs.Mkdir(t.hfileDir()); err != nil {
		return nil, err
	}
	if err := fs.Mkdir(t.walDir()); err != nil {
		return nil, err
	}
	files, sizes, err := t.listStoreFiles()
	if err != nil {
		return nil, err
	}
	t.files = files
	for i, f := range files {
		n, err := fileNumber(f)
		if err != nil {
			return nil, err
		}
		if n >= t.nextFile {
			t.nextFile = n + 1
		}
		t.diskBytes += sizes[i]
		// Track the highest sequence number present in store files.
		entries, err := t.readStoreFile(f)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.cell.seq > t.seq {
				t.seq = e.cell.seq
			}
		}
	}
	if err := t.replayWAL(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Table) walDir() string   { return vfs.Join(t.root, "wal.d") }
func (t *Table) hfileDir() string { return vfs.Join(t.root, "hfiles") }

func (t *Table) walSegPath(n int) string {
	return vfs.Join(t.walDir(), fmt.Sprintf("%06d", n))
}

func fileNumber(path string) (int, error) {
	_, name := vfs.Split(path)
	return strconv.Atoi(name)
}

// listStoreFiles lists store file paths and sizes from the filesystem,
// oldest first. Only Open uses it; afterwards t.files is authoritative.
func (t *Table) listStoreFiles() ([]string, []int64, error) {
	infos, err := t.fs.List(t.hfileDir())
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
	var paths []string
	var sizes []int64
	for _, fi := range infos {
		if !fi.IsDir {
			paths = append(paths, fi.Path)
			sizes = append(sizes, fi.Size)
		}
	}
	return paths, sizes, nil
}

// --- WAL ---

// walRecord is one logged mutation, encoded as a single text line:
// seq <TAB> P|D <TAB> b64(key) <TAB> b64(value) <TAB> crc32
// The trailing checksum is what makes a torn record (a crash mid-append)
// reliably detectable: a truncated base64 field can still decode, but it
// cannot still match the CRC.
func walLine(seq uint64, key string, c cell) string {
	op := "P"
	if c.tombstone {
		op = "D"
	}
	return fmt.Sprintf("%d\t%s\t%s\t%s\t%d\n", seq, op,
		base64.StdEncoding.EncodeToString([]byte(key)),
		base64.StdEncoding.EncodeToString(c.value),
		walCRC(seq, op, key, c.value))
}

func walCRC(seq uint64, op, key string, value []byte) uint32 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d|%s|%s|", seq, op, key)
	h.Write(value)
	return h.Sum32()
}

func parseWALLine(line string) (key string, c cell, err error) {
	f := strings.Split(line, "\t")
	if len(f) != 5 {
		return "", cell{}, fmt.Errorf("kvstore: bad wal line %q", line)
	}
	seq, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return "", cell{}, err
	}
	kb, err := base64.StdEncoding.DecodeString(f[2])
	if err != nil {
		return "", cell{}, err
	}
	vb, err := base64.StdEncoding.DecodeString(f[3])
	if err != nil {
		return "", cell{}, err
	}
	crc, err := strconv.ParseUint(f[4], 10, 32)
	if err != nil {
		return "", cell{}, err
	}
	if uint32(crc) != walCRC(seq, f[1], string(kb), vb) {
		return "", cell{}, fmt.Errorf("kvstore: wal record checksum mismatch")
	}
	return string(kb), cell{seq: seq, value: vb, tombstone: f[1] == "D"}, nil
}

// appendWAL appends one record to the current segment, rewriting only
// that segment (bounded by WALSegmentBytes), and rolls to a fresh
// segment once the cap is reached.
func (t *Table) appendWAL(line string) error {
	t.walBuf = append(t.walBuf, line...)
	path := t.walSegPath(t.walSeg)
	if vfs.Exists(t.fs, path) {
		if err := t.fs.Remove(path, false); err != nil {
			return err
		}
	}
	if err := vfs.WriteFile(t.fs, path, t.walBuf); err != nil {
		return err
	}
	t.m.walAppends.Inc()
	t.m.walBytes.Add(int64(len(line)))
	if int64(len(t.walBuf)) >= t.cfg.WALSegmentBytes {
		t.walSeg++
		t.walBuf = nil
	}
	return nil
}

// walSegments lists WAL segment paths in replay order.
func (t *Table) walSegments() ([]string, error) {
	infos, err := t.fs.List(t.walDir())
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, fi := range infos {
		if !fi.IsDir {
			segs = append(segs, fi.Path)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// replayWAL applies every WAL segment, in order, into the MemStore. The
// trailing newline is a record's commit point: a final record left
// unterminated or failing its CRC — the torn tail a crash mid-append
// leaves behind — is dropped and counted. Anywhere else, a bad record is
// fatal (corruption, not truncation).
func (t *Table) replayWAL() error {
	var sources [][]byte
	segs, err := t.walSegments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		data, err := vfs.ReadFile(t.fs, seg)
		if err != nil {
			return err
		}
		sources = append(sources, data)
		n, err := fileNumber(seg)
		if err != nil {
			return err
		}
		if n >= t.walSeg {
			t.walSeg = n + 1
		}
	}
	for si, data := range sources {
		last := si == len(sources)-1
		if last && len(data) > 0 && data[len(data)-1] != '\n' {
			// Unterminated tail record: never committed, drop it.
			data = data[:bytes.LastIndexByte(data, '\n')+1]
			t.m.walTornDrops.Inc()
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		var lines []string
		for sc.Scan() {
			if sc.Text() != "" {
				lines = append(lines, sc.Text())
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		for li, line := range lines {
			key, c, err := parseWALLine(line)
			if err != nil {
				if last && li == len(lines)-1 {
					t.m.walTornDrops.Inc()
					continue
				}
				return err
			}
			t.applyToMem(key, c)
			t.m.walReplayed.Inc()
			if c.seq > t.seq {
				t.seq = c.seq
			}
		}
	}
	return nil
}

// truncateWAL removes every WAL segment after a flush has made their
// records durable in a store file.
func (t *Table) truncateWAL() error {
	segs, err := t.walSegments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := t.fs.Remove(seg, false); err != nil {
			return err
		}
	}
	t.walSeg = 0
	t.walBuf = nil
	return nil
}

func (t *Table) applyToMem(key string, c cell) {
	if old, ok := t.mem[key]; ok {
		t.memBytes -= int64(len(key) + len(old.value))
	}
	t.mem[key] = c
	t.memBytes += int64(len(key) + len(c.value))
}

// --- mutations ---

// Put stores value under key.
func (t *Table) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("kvstore: empty key")
	}
	t.seq++
	c := cell{seq: t.seq, value: append([]byte(nil), value...)}
	if err := t.appendWAL(walLine(t.seq, key, c)); err != nil {
		return err
	}
	t.applyToMem(key, c)
	t.m.puts.Inc()
	return t.maybeFlush()
}

// Delete writes a tombstone for key (idempotent).
func (t *Table) Delete(key string) error {
	t.seq++
	c := cell{seq: t.seq, tombstone: true}
	if err := t.appendWAL(walLine(t.seq, key, c)); err != nil {
		return err
	}
	t.applyToMem(key, c)
	t.m.deletes.Inc()
	return t.maybeFlush()
}

func (t *Table) maybeFlush() error {
	if t.memBytes < t.cfg.FlushThresholdBytes {
		return nil
	}
	return t.Flush()
}

// --- store files ---

type entry struct {
	key  string
	cell cell
}

// Flush writes the MemStore as a new sorted store file and truncates the
// WAL. A no-op on an empty MemStore.
func (t *Table) Flush() error {
	if len(t.mem) == 0 {
		return nil
	}
	entries := make([]entry, 0, len(t.mem))
	for k, c := range t.mem {
		entries = append(entries, entry{k, c})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	path := vfs.Join(t.hfileDir(), fmt.Sprintf("%06d", t.nextFile))
	n, err := t.writeStoreFile(path, entries)
	if err != nil {
		return err
	}
	t.nextFile++
	t.mem = map[string]cell{}
	t.memBytes = 0
	if err := t.truncateWAL(); err != nil {
		return err
	}
	t.Flushes++
	t.m.flushes.Inc()
	t.m.flushBytes.Add(n)
	if len(t.files) >= t.cfg.CompactTrigger {
		return t.Compact()
	}
	return nil
}

// writeStoreFile persists sorted entries as a new store file, updating
// the file list, file cache and disk accounting.
func (t *Table) writeStoreFile(path string, entries []entry) (int64, error) {
	var buf bytes.Buffer
	for _, e := range entries {
		buf.WriteString(walLine(e.cell.seq, e.key, e.cell))
	}
	if err := vfs.WriteFile(t.fs, path, buf.Bytes()); err != nil {
		return 0, err
	}
	t.files = append(t.files, path)
	t.fileCache[path] = entries
	t.diskBytes += int64(buf.Len())
	return int64(buf.Len()), nil
}

// readStoreFile returns a store file's sorted entries, parsing it at
// most once (the file cache).
func (t *Table) readStoreFile(path string) ([]entry, error) {
	if entries, ok := t.fileCache[path]; ok {
		return entries, nil
	}
	data, err := vfs.ReadFile(t.fs, path)
	if err != nil {
		return nil, err
	}
	var out []entry
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		key, c, err := parseWALLine(sc.Text())
		if err != nil {
			return nil, err
		}
		out = append(out, entry{key, c})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.fileCache[path] = out
	t.m.storeFileReads.Inc()
	return out, nil
}

// removeStoreFiles deletes the named store files and their cache and
// accounting entries.
func (t *Table) removeStoreFiles(paths []string) error {
	drop := map[string]bool{}
	for _, f := range paths {
		if err := t.fs.Remove(f, false); err != nil {
			return err
		}
		for _, e := range t.fileCache[f] {
			t.diskBytes -= int64(len(walLine(e.cell.seq, e.key, e.cell)))
		}
		delete(t.fileCache, f)
		drop[f] = true
	}
	keep := t.files[:0]
	for _, f := range t.files {
		if !drop[f] {
			keep = append(keep, f)
		}
	}
	t.files = keep
	return nil
}

// Compact merges all store files into one, dropping overwritten versions
// and tombstoned keys (a major compaction at teaching scale).
func (t *Table) Compact() error {
	files := append([]string(nil), t.files...)
	if len(files) <= 1 {
		return nil
	}
	latest := map[string]cell{}
	for _, f := range files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if cur, ok := latest[e.key]; !ok || e.cell.seq > cur.seq {
				latest[e.key] = e.cell
			}
		}
	}
	var merged []entry
	for k, c := range latest {
		if c.tombstone {
			continue // tombstones can drop: no older files remain
		}
		merged = append(merged, entry{k, c})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].key < merged[j].key })
	if err := t.removeStoreFiles(files); err != nil {
		return err
	}
	path := vfs.Join(t.hfileDir(), fmt.Sprintf("%06d", t.nextFile))
	n, err := t.writeStoreFile(path, merged)
	if err != nil {
		return err
	}
	t.nextFile++
	t.Compactions++
	t.m.compactions.Inc()
	t.m.compactBytes.Add(n)
	return nil
}

// BulkLoad writes kvs directly as one sorted store file, bypassing the
// WAL and MemStore — the bulk-import path dataset loads and region
// splits/merges use. Keys within kvs must be unique; later sequence
// numbers are assigned in slice order after sorting by key.
func (t *Table) BulkLoad(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	sorted := append([]KV(nil), kvs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	entries := make([]entry, len(sorted))
	for i, kv := range sorted {
		t.seq++
		entries[i] = entry{kv.Key, cell{seq: t.seq, value: append([]byte(nil), kv.Value...)}}
	}
	path := vfs.Join(t.hfileDir(), fmt.Sprintf("%06d", t.nextFile))
	if _, err := t.writeStoreFile(path, entries); err != nil {
		return err
	}
	t.nextFile++
	t.m.bulkLoads.Inc()
	if len(t.files) >= t.cfg.CompactTrigger {
		return t.Compact()
	}
	return nil
}

// --- reads ---

// Get returns the newest value for key, or ErrNotFound.
func (t *Table) Get(key string) ([]byte, error) {
	t.m.gets.Inc()
	best, ok := t.lookup(key)
	if !ok || best.tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.value...), nil
}

func (t *Table) lookup(key string) (cell, bool) {
	var best cell
	found := false
	if c, ok := t.mem[key]; ok {
		best, found = c, true
	}
	for _, f := range t.files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			continue
		}
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key >= key })
		if i < len(entries) && entries[i].key == key {
			if !found || entries[i].cell.seq > best.seq {
				best, found = entries[i].cell, true
			}
		}
	}
	return best, found
}

// KV is one scan result.
type KV struct {
	Key   string
	Value []byte
}

// ScanRange returns up to limit live key-value pairs with
// startKey <= key < endKey (endKey "" = unbounded), in key order,
// merging MemStore and store files with newest-version-wins semantics —
// without materializing the whole range. limit <= 0 means unlimited.
//
// The second result is the resume cursor: pass it as the next call's
// startKey to continue the scan; "" means the range is exhausted. This
// is the bounded iterator region scans and splits run on.
func (t *Table) ScanRange(startKey, endKey string, limit int) ([]KV, string, error) {
	t.m.scans.Inc()
	// Sources: the MemStore's in-range keys (collected then sorted) and
	// each store file positioned at startKey by binary search.
	inRange := func(k string) bool {
		return k >= startKey && (endKey == "" || k < endKey)
	}
	var sources [][]entry
	if len(t.mem) > 0 {
		var memEntries []entry
		for k, c := range t.mem {
			if inRange(k) {
				memEntries = append(memEntries, entry{k, c})
			}
		}
		sort.Slice(memEntries, func(i, j int) bool { return memEntries[i].key < memEntries[j].key })
		if len(memEntries) > 0 {
			sources = append(sources, memEntries)
		}
	}
	for _, f := range t.files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			return nil, "", err
		}
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key >= startKey })
		if i < len(entries) && inRange(entries[i].key) {
			sources = append(sources, entries[i:])
		}
	}
	heads := make([]int, len(sources))
	var out []KV
	for {
		// Find the smallest key across source heads.
		minKey := ""
		for s, src := range sources {
			if heads[s] >= len(src) || !inRange(src[heads[s]].key) {
				continue
			}
			if k := src[heads[s]].key; minKey == "" || k < minKey {
				minKey = k
			}
		}
		if minKey == "" {
			return out, "", nil // every source exhausted within the range
		}
		// Resolve the newest cell for minKey, advancing every source
		// positioned on it.
		var best cell
		for s, src := range sources {
			if heads[s] < len(src) && src[heads[s]].key == minKey {
				if c := src[heads[s]].cell; c.seq > best.seq {
					best = c
				}
				heads[s]++
			}
		}
		if !best.tombstone {
			out = append(out, KV{Key: minKey, Value: append([]byte(nil), best.value...)})
			if limit > 0 && len(out) >= limit {
				return out, minKey + "\x00", nil
			}
		}
	}
}

// Scan returns all live key-value pairs with startKey <= key < endKey
// (endKey "" = unbounded), in key order. It is a wrapper that drains
// ScanRange.
func (t *Table) Scan(startKey, endKey string) ([]KV, error) {
	var out []KV
	cur := startKey
	for {
		kvs, next, err := t.ScanRange(cur, endKey, 1024)
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
		if next == "" {
			return out, nil
		}
		cur = next
	}
}

// MidKey returns the median live key — the natural split point for a
// region hosting this table — or "" when the table has fewer than two
// live keys.
func (t *Table) MidKey() (string, error) {
	var keys []string
	cur := ""
	for {
		kvs, next, err := t.ScanRange(cur, "", 1024)
		if err != nil {
			return "", err
		}
		for _, kv := range kvs {
			keys = append(keys, kv.Key)
		}
		if next == "" {
			break
		}
		cur = next
	}
	if len(keys) < 2 {
		return "", nil
	}
	return keys[len(keys)/2], nil
}

// Len returns the number of live keys.
func (t *Table) Len() (int, error) {
	kvs, err := t.Scan("", "")
	if err != nil {
		return 0, err
	}
	return len(kvs), nil
}

// StoreFileCount reports the current number of store files.
func (t *Table) StoreFileCount() int { return len(t.files) }

// MemStoreBytes reports the current MemStore footprint.
func (t *Table) MemStoreBytes() int64 { return t.memBytes }

// DiskBytes reports the total store-file footprint.
func (t *Table) DiskBytes() int64 { return t.diskBytes }

// SizeBytes reports the table's total footprint (MemStore + store
// files) — the size signal region auto-splitting keys on.
func (t *Table) SizeBytes() int64 { return t.memBytes + t.diskBytes }

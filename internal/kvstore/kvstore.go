// Package kvstore is a teaching-scale HBase: a sorted, versioned
// key-value store layered on HDFS, matching the architecture covered by
// the course's HBase/Hive lecture (Fall 2013 added "one lecture
// introducing HBase/Hive ... to provide a more comprehensive view of the
// Hadoop ecosystem"). It implements the essential mechanics — a
// write-ahead log on HDFS, an in-memory MemStore, sorted immutable
// store files (HFiles) flushed to HDFS, read-path merging across
// MemStore and store files, tombstone deletes, minor compaction, and
// range scans — over any vfs.FileSystem, so a table survives whatever
// the underlying DFS survives.
package kvstore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// ErrNotFound is returned by Get for absent (or deleted) keys.
var ErrNotFound = errors.New("kvstore: key not found")

// Config tunes a table.
type Config struct {
	// FlushThresholdBytes triggers a MemStore flush (default 64 KiB —
	// teaching scale).
	FlushThresholdBytes int64
	// CompactTrigger is the store-file count that triggers a minor
	// compaction (default 4).
	CompactTrigger int
}

func (c Config) withDefaults() Config {
	if c.FlushThresholdBytes <= 0 {
		c.FlushThresholdBytes = 64 << 10
	}
	if c.CompactTrigger <= 0 {
		c.CompactTrigger = 4
	}
	return c
}

// cell is one versioned value; tombstone marks a delete.
type cell struct {
	seq       uint64
	value     []byte
	tombstone bool
}

// Table is one HBase-style table rooted at a directory of the backing
// filesystem:
//
//	<root>/wal            append-only write-ahead log
//	<root>/hfiles/NNNNNN  sorted immutable store files
type Table struct {
	fs   vfs.FileSystem
	root string
	cfg  Config

	mem      map[string]cell
	memBytes int64
	seq      uint64
	nextFile int

	// Flushes and Compactions count maintenance operations for tests and
	// the lecture demo.
	Flushes     int
	Compactions int
}

// Open creates or reopens a table at root. Reopening replays the WAL into
// the MemStore and discovers existing store files — the recovery path.
func Open(fs vfs.FileSystem, root string, cfg Config) (*Table, error) {
	t := &Table{
		fs:   fs,
		root: vfs.Clean(root),
		cfg:  cfg.withDefaults(),
		mem:  map[string]cell{},
	}
	if err := fs.Mkdir(t.hfileDir()); err != nil {
		return nil, err
	}
	files, err := t.storeFiles()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		n, err := fileNumber(f)
		if err != nil {
			return nil, err
		}
		if n >= t.nextFile {
			t.nextFile = n + 1
		}
		// Track the highest sequence number present in store files.
		entries, err := t.readStoreFile(f)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.cell.seq > t.seq {
				t.seq = e.cell.seq
			}
		}
	}
	if err := t.replayWAL(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Table) walPath() string  { return vfs.Join(t.root, "wal") }
func (t *Table) hfileDir() string { return vfs.Join(t.root, "hfiles") }

func fileNumber(path string) (int, error) {
	_, name := vfs.Split(path)
	return strconv.Atoi(name)
}

// storeFiles lists store file paths, oldest first.
func (t *Table) storeFiles() ([]string, error) {
	infos, err := t.fs.List(t.hfileDir())
	if err != nil {
		return nil, err
	}
	var out []string
	for _, fi := range infos {
		if !fi.IsDir {
			out = append(out, fi.Path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// --- WAL ---

// walRecord is one logged mutation, encoded as a single text line:
// seq <TAB> P|D <TAB> b64(key) <TAB> b64(value)
func walLine(seq uint64, key string, c cell) string {
	op := "P"
	if c.tombstone {
		op = "D"
	}
	return fmt.Sprintf("%d\t%s\t%s\t%s\n", seq, op,
		base64.StdEncoding.EncodeToString([]byte(key)),
		base64.StdEncoding.EncodeToString(c.value))
}

func parseWALLine(line string) (key string, c cell, err error) {
	f := strings.Split(line, "\t")
	if len(f) != 4 {
		return "", cell{}, fmt.Errorf("kvstore: bad wal line %q", line)
	}
	seq, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return "", cell{}, err
	}
	kb, err := base64.StdEncoding.DecodeString(f[2])
	if err != nil {
		return "", cell{}, err
	}
	vb, err := base64.StdEncoding.DecodeString(f[3])
	if err != nil {
		return "", cell{}, err
	}
	return string(kb), cell{seq: seq, value: vb, tombstone: f[1] == "D"}, nil
}

// appendWAL rewrites the WAL with the new record appended. (vfs has no
// append mode; the WAL is small — it is truncated at every flush.)
func (t *Table) appendWAL(line string) error {
	var existing []byte
	if vfs.Exists(t.fs, t.walPath()) {
		data, err := vfs.ReadFile(t.fs, t.walPath())
		if err != nil {
			return err
		}
		existing = data
		if err := t.fs.Remove(t.walPath(), false); err != nil {
			return err
		}
	}
	return vfs.WriteFile(t.fs, t.walPath(), append(existing, line...))
}

func (t *Table) replayWAL() error {
	if !vfs.Exists(t.fs, t.walPath()) {
		return nil
	}
	data, err := vfs.ReadFile(t.fs, t.walPath())
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		key, c, err := parseWALLine(sc.Text())
		if err != nil {
			return err
		}
		t.applyToMem(key, c)
		if c.seq > t.seq {
			t.seq = c.seq
		}
	}
	return sc.Err()
}

func (t *Table) applyToMem(key string, c cell) {
	if old, ok := t.mem[key]; ok {
		t.memBytes -= int64(len(key) + len(old.value))
	}
	t.mem[key] = c
	t.memBytes += int64(len(key) + len(c.value))
}

// --- mutations ---

// Put stores value under key.
func (t *Table) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("kvstore: empty key")
	}
	t.seq++
	c := cell{seq: t.seq, value: append([]byte(nil), value...)}
	if err := t.appendWAL(walLine(t.seq, key, c)); err != nil {
		return err
	}
	t.applyToMem(key, c)
	return t.maybeFlush()
}

// Delete writes a tombstone for key (idempotent).
func (t *Table) Delete(key string) error {
	t.seq++
	c := cell{seq: t.seq, tombstone: true}
	if err := t.appendWAL(walLine(t.seq, key, c)); err != nil {
		return err
	}
	t.applyToMem(key, c)
	return t.maybeFlush()
}

func (t *Table) maybeFlush() error {
	if t.memBytes < t.cfg.FlushThresholdBytes {
		return nil
	}
	return t.Flush()
}

// --- store files ---

type entry struct {
	key  string
	cell cell
}

// Flush writes the MemStore as a new sorted store file and truncates the
// WAL. A no-op on an empty MemStore.
func (t *Table) Flush() error {
	if len(t.mem) == 0 {
		return nil
	}
	entries := make([]entry, 0, len(t.mem))
	for k, c := range t.mem {
		entries = append(entries, entry{k, c})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	path := vfs.Join(t.hfileDir(), fmt.Sprintf("%06d", t.nextFile))
	if err := t.writeStoreFile(path, entries); err != nil {
		return err
	}
	t.nextFile++
	t.mem = map[string]cell{}
	t.memBytes = 0
	if vfs.Exists(t.fs, t.walPath()) {
		if err := t.fs.Remove(t.walPath(), false); err != nil {
			return err
		}
	}
	t.Flushes++
	files, err := t.storeFiles()
	if err != nil {
		return err
	}
	if len(files) >= t.cfg.CompactTrigger {
		return t.Compact()
	}
	return nil
}

func (t *Table) writeStoreFile(path string, entries []entry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		buf.WriteString(walLine(e.cell.seq, e.key, e.cell))
	}
	return vfs.WriteFile(t.fs, path, buf.Bytes())
}

func (t *Table) readStoreFile(path string) ([]entry, error) {
	data, err := vfs.ReadFile(t.fs, path)
	if err != nil {
		return nil, err
	}
	var out []entry
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		key, c, err := parseWALLine(sc.Text())
		if err != nil {
			return nil, err
		}
		out = append(out, entry{key, c})
	}
	return out, sc.Err()
}

// Compact merges all store files into one, dropping overwritten versions
// and tombstoned keys (a major compaction at teaching scale).
func (t *Table) Compact() error {
	files, err := t.storeFiles()
	if err != nil {
		return err
	}
	if len(files) <= 1 {
		return nil
	}
	latest := map[string]cell{}
	for _, f := range files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if cur, ok := latest[e.key]; !ok || e.cell.seq > cur.seq {
				latest[e.key] = e.cell
			}
		}
	}
	var merged []entry
	for k, c := range latest {
		if c.tombstone {
			continue // tombstones can drop: no older files remain
		}
		merged = append(merged, entry{k, c})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].key < merged[j].key })
	path := vfs.Join(t.hfileDir(), fmt.Sprintf("%06d", t.nextFile))
	if err := t.writeStoreFile(path, merged); err != nil {
		return err
	}
	t.nextFile++
	for _, f := range files {
		if err := t.fs.Remove(f, false); err != nil {
			return err
		}
	}
	t.Compactions++
	return nil
}

// --- reads ---

// Get returns the newest value for key, or ErrNotFound.
func (t *Table) Get(key string) ([]byte, error) {
	best, ok := t.lookup(key)
	if !ok || best.tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), best.value...), nil
}

func (t *Table) lookup(key string) (cell, bool) {
	var best cell
	found := false
	if c, ok := t.mem[key]; ok {
		best, found = c, true
	}
	files, err := t.storeFiles()
	if err != nil {
		return cell{}, false
	}
	for _, f := range files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			continue
		}
		i := sort.Search(len(entries), func(i int) bool { return entries[i].key >= key })
		if i < len(entries) && entries[i].key == key {
			if !found || entries[i].cell.seq > best.seq {
				best, found = entries[i].cell, true
			}
		}
	}
	return best, found
}

// KV is one scan result.
type KV struct {
	Key   string
	Value []byte
}

// Scan returns live key-value pairs with startKey <= key < endKey
// (endKey "" = unbounded), in key order, merging MemStore and all store
// files with newest-version-wins semantics.
func (t *Table) Scan(startKey, endKey string) ([]KV, error) {
	newest := map[string]cell{}
	consider := func(key string, c cell) {
		if key < startKey || (endKey != "" && key >= endKey) {
			return
		}
		if cur, ok := newest[key]; !ok || c.seq > cur.seq {
			newest[key] = c
		}
	}
	files, err := t.storeFiles()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		entries, err := t.readStoreFile(f)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			consider(e.key, e.cell)
		}
	}
	for k, c := range t.mem {
		consider(k, c)
	}
	var out []KV
	for k, c := range newest {
		if c.tombstone {
			continue
		}
		out = append(out, KV{Key: k, Value: append([]byte(nil), c.value...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Len returns the number of live keys.
func (t *Table) Len() (int, error) {
	kvs, err := t.Scan("", "")
	if err != nil {
		return 0, err
	}
	return len(kvs), nil
}

// StoreFileCount reports the current number of store files.
func (t *Table) StoreFileCount() int {
	files, _ := t.storeFiles()
	return len(files)
}

// MemStoreBytes reports the current MemStore footprint.
func (t *Table) MemStoreBytes() int64 { return t.memBytes }

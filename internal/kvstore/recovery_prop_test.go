package kvstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// scanMap flattens a full scan into a map for multiset comparison (keys
// are unique in a scan, so a map is the multiset).
func scanMap(t *testing.T, tbl *kvstore.Table) map[string]string {
	t.Helper()
	kvs, err := tbl.Scan("", "")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] = string(kv.Value)
	}
	return out
}

func diffModels(t *testing.T, got, want map[string]string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d live keys, want %d", label, len(got), len(want))
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s: key %q = %q, want %q", label, k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: phantom key %q = %q", label, k, got[k])
		}
	}
}

// TestCrashRecoveryAcrossSeeds is the WAL-replay property test: a random
// put/delete/flush workload is "killed" (the handle dropped, no flush) at
// arbitrary points and reopened from the shared filesystem; the
// recovered table's scan must be multiset-identical to an in-memory
// model of every acknowledged mutation.
func TestCrashRecoveryAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99, 1234} {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := sim.NewRand(seed).Derive("kv-crash")
			fs := vfs.NewMemFS()
			cfg := kvstore.Config{
				FlushThresholdBytes: 1 << 10,
				CompactTrigger:      3,
				WALSegmentBytes:     128, // many small segments
			}
			tbl, err := kvstore.Open(fs, "/t", cfg)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]string{}
			ops := 400 + rng.Intn(400)
			for op := 0; op < ops; op++ {
				k := fmt.Sprintf("row%03d", rng.Intn(60))
				switch {
				case rng.Bernoulli(0.15):
					if err := tbl.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case rng.Bernoulli(0.03):
					if err := tbl.Flush(); err != nil {
						t.Fatal(err)
					}
				default:
					v := fmt.Sprintf("v%d-%d", seed, op)
					if err := tbl.Put(k, []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
				// Crash at arbitrary offsets: drop the handle and reopen.
				if rng.Bernoulli(0.02) {
					tbl, err = kvstore.Open(fs, "/t", cfg)
					if err != nil {
						t.Fatalf("reopen after op %d: %v", op, err)
					}
					diffModels(t, scanMap(t, tbl), model, fmt.Sprintf("after crash at op %d", op))
				}
			}
			tbl, err = kvstore.Open(fs, "/t", cfg)
			if err != nil {
				t.Fatal(err)
			}
			diffModels(t, scanMap(t, tbl), model, "final reopen")
		})
	}
}

// TestTornWALTailRecovery kills the table at arbitrary *byte* offsets of
// the write-ahead log: the final WAL segment is truncated mid-record, as
// a crash in the middle of an append would leave it. Recovery must apply
// exactly the records that survived whole (the CRC rejects a torn tail,
// even one whose base64 still decodes) and drop nothing else.
func TestTornWALTailRecovery(t *testing.T) {
	for _, seed := range []int64{3, 21, 77} {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := sim.NewRand(seed).Derive("kv-torn")
			type op struct {
				key, val string
				del      bool
			}
			buildOps := func() []op {
				n := 50 + rng.Intn(100)
				out := make([]op, n)
				for i := range out {
					o := op{key: fmt.Sprintf("k%02d", rng.Intn(25))}
					if rng.Bernoulli(0.2) {
						o.del = true
					} else {
						o.val = fmt.Sprintf("value-%d-%d", seed, i)
					}
					out[i] = o
				}
				return out
			}
			for round := 0; round < 5; round++ {
				ops := buildOps()
				fs := vfs.NewMemFS()
				// Huge flush threshold: everything stays in the WAL.
				cfg := kvstore.Config{FlushThresholdBytes: 1 << 40, WALSegmentBytes: 256}
				tbl, err := kvstore.Open(fs, "/t", cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range ops {
					if o.del {
						err = tbl.Delete(o.key)
					} else {
						err = tbl.Put(o.key, []byte(o.val))
					}
					if err != nil {
						t.Fatal(err)
					}
				}
				// Find the WAL segments and truncate the last one at an
				// arbitrary byte offset.
				infos, err := fs.List("/t/wal.d")
				if err != nil {
					t.Fatal(err)
				}
				var segs []string
				for _, fi := range infos {
					segs = append(segs, fi.Path)
				}
				sort.Strings(segs)
				if len(segs) == 0 {
					t.Fatal("workload left no WAL segments")
				}
				last := segs[len(segs)-1]
				data, err := vfs.ReadFile(fs, last)
				if err != nil {
					t.Fatal(err)
				}
				cut := rng.Intn(len(data) + 1)
				if err := fs.Remove(last, false); err != nil {
					t.Fatal(err)
				}
				if cut > 0 {
					if err := vfs.WriteFile(fs, last, data[:cut]); err != nil {
						t.Fatal(err)
					}
				}
				// Records that survived whole: every line of the earlier
				// segments plus the complete lines of the truncated prefix.
				survived := 0
				for _, seg := range segs[:len(segs)-1] {
					d, err := vfs.ReadFile(fs, seg)
					if err != nil {
						t.Fatal(err)
					}
					survived += bytes.Count(d, []byte("\n"))
				}
				survived += bytes.Count(data[:cut], []byte("\n"))
				model := map[string]string{}
				for _, o := range ops[:survived] {
					if o.del {
						delete(model, o.key)
					} else {
						model[o.key] = o.val
					}
				}
				re, err := kvstore.Open(fs, "/t", cfg)
				if err != nil {
					t.Fatalf("round %d: reopen after cut at %d/%d: %v", round, cut, len(data), err)
				}
				diffModels(t, scanMap(t, re), model,
					fmt.Sprintf("round %d cut %d/%d (%d/%d records survive)", round, cut, len(data), survived, len(ops)))
			}
		})
	}
}

// TestScanRangeCursor exercises the bounded iterator: chunked scans with
// a resume cursor must agree with the one-shot Scan at every limit, and
// the cursor must terminate.
func TestScanRangeCursor(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 512, CompactTrigger: 3})
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("row%03d", i)
		v := fmt.Sprintf("v%d", i)
		if err := tbl.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Tombstones interleaved across store files and the MemStore.
	for i := 0; i < 200; i += 7 {
		k := fmt.Sprintf("row%03d", i)
		if err := tbl.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	full, err := tbl.Scan("row010", "row150")
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 3, 17, 1000} {
		var got []kvstore.KV
		cur := "row010"
		hops := 0
		for {
			kvs, next, err := tbl.ScanRange(cur, "row150", limit)
			if err != nil {
				t.Fatal(err)
			}
			if limit > 0 && len(kvs) > limit {
				t.Fatalf("limit %d returned %d rows", limit, len(kvs))
			}
			got = append(got, kvs...)
			if next == "" {
				break
			}
			cur = next
			if hops++; hops > 1000 {
				t.Fatal("cursor did not terminate")
			}
		}
		if len(got) != len(full) {
			t.Fatalf("limit %d: %d rows, want %d", limit, len(got), len(full))
		}
		for i := range full {
			if got[i].Key != full[i].Key || !bytes.Equal(got[i].Value, full[i].Value) {
				t.Fatalf("limit %d row %d: %s=%q, want %s=%q",
					limit, i, got[i].Key, got[i].Value, full[i].Key, full[i].Value)
			}
		}
	}
	// The scan respected deletes.
	for _, kv := range full {
		if want[kv.Key] != string(kv.Value) {
			t.Fatalf("scan row %s=%q disagrees with model %q", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

// TestBulkLoadAndMidKey covers the bulk-import path splits use: loaded
// rows are readable, later Puts override them, and MidKey lands on the
// median live key.
func TestBulkLoadAndMidKey(t *testing.T) {
	tbl, fs := openMem(t, kvstore.Config{FlushThresholdBytes: 1 << 40, CompactTrigger: 100})
	var kvs []kvstore.KV
	for i := 0; i < 100; i++ {
		kvs = append(kvs, kvstore.KV{Key: fmt.Sprintf("u%04d", i), Value: []byte(fmt.Sprintf("p%d", i))})
	}
	if err := tbl.BulkLoad(kvs); err != nil {
		t.Fatal(err)
	}
	if tbl.StoreFileCount() != 1 {
		t.Fatalf("bulk load wrote %d store files, want 1", tbl.StoreFileCount())
	}
	got, err := tbl.Get("u0042")
	if err != nil || string(got) != "p42" {
		t.Fatalf("u0042 = %q err=%v", got, err)
	}
	// A Put after the bulk load must win (higher sequence number).
	if err := tbl.Put("u0042", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if got, _ = tbl.Get("u0042"); string(got) != "newer" {
		t.Fatalf("post-bulk-load put lost: %q", got)
	}
	mid, err := tbl.MidKey()
	if err != nil {
		t.Fatal(err)
	}
	if mid != "u0050" {
		t.Fatalf("MidKey = %q, want u0050", mid)
	}
	// Durability: reopen sees the bulk-loaded file.
	re, err := kvstore.Open(fs, "/hbase/table", kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := re.Len(); n != 100 {
		t.Fatalf("reopened len = %d, want 100", n)
	}
	// Degenerate MidKey: below two live keys there is nothing to split.
	empty, _ := openMemAt(t, "/empty")
	if mid, _ := empty.MidKey(); mid != "" {
		t.Fatalf("empty MidKey = %q", mid)
	}
}

func openMemAt(t *testing.T, root string) (*kvstore.Table, vfs.FileSystem) {
	t.Helper()
	fs := vfs.NewMemFS()
	tbl, err := kvstore.Open(fs, root, kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, fs
}

// TestKVMetricsWired checks the obs wiring: maintenance and hot-path
// counters land in the registry under kv.*.
func TestKVMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	fs := vfs.NewMemFS()
	tbl, err := kvstore.Open(fs, "/t", kvstore.Config{
		FlushThresholdBytes: 256, CompactTrigger: 2, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tbl.Put(fmt.Sprintf("key-%04d", i), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Delete("key-0000")
	if _, err := tbl.Get("key-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get("key-0000"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	tbl.Scan("", "")
	for name, min := range map[string]int64{
		kvstore.MetricPuts:        200,
		kvstore.MetricDeletes:     1,
		kvstore.MetricGets:        2,
		kvstore.MetricScans:       1,
		kvstore.MetricFlushes:     1,
		kvstore.MetricCompactions: 1,
		kvstore.MetricFlushBytes:  1,
		kvstore.MetricWALAppends:  201,
		kvstore.MetricWALBytes:    201,
	} {
		if got := reg.CounterValue(name); got < min {
			t.Errorf("%s = %d, want >= %d", name, got, min)
		}
	}
	if int64(tbl.Flushes) != reg.CounterValue(kvstore.MetricFlushes) {
		t.Errorf("Flushes field %d != obs counter %d", tbl.Flushes, reg.CounterValue(kvstore.MetricFlushes))
	}
	if int64(tbl.Compactions) != reg.CounterValue(kvstore.MetricCompactions) {
		t.Errorf("Compactions field %d != obs counter %d", tbl.Compactions, reg.CounterValue(kvstore.MetricCompactions))
	}
}

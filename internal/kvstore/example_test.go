package kvstore_test

import (
	"fmt"
	"log"

	"repro/internal/kvstore"
	"repro/internal/vfs"
)

// Example shows the HBase-style API: put, scan a row-key range, delete,
// and recover from the write-ahead log after a crash.
func Example() {
	fs := vfs.NewMemFS()
	tbl, err := kvstore.Open(fs, "/hbase/t", kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	tbl.Put("row1:name", []byte("ada"))
	tbl.Put("row1:year", []byte("1815"))
	tbl.Put("row2:name", []byte("alan"))
	tbl.Delete("row2:name")

	// "Crash" and reopen: the WAL replays.
	tbl2, err := kvstore.Open(fs, "/hbase/t", kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	kvs, err := tbl2.Scan("row1:", "row1;")
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("%s=%s\n", kv.Key, kv.Value)
	}
	_, err = tbl2.Get("row2:name")
	fmt.Println("row2:name err:", err)
	// Output:
	// row1:name=ada
	// row1:year=1815
	// row2:name err: kvstore: key not found
}

package kvstore_test

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/vfs"
)

func BenchmarkPut(b *testing.B) {
	tbl, err := kvstore.Open(vfs.NewMemFS(), "/t", kvstore.Config{FlushThresholdBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Put(fmt.Sprintf("row%06d", i%1000), []byte("value payload here")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetAfterFlush(b *testing.B) {
	tbl, err := kvstore.Open(vfs.NewMemFS(), "/t", kvstore.Config{FlushThresholdBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tbl.Put(fmt.Sprintf("row%06d", i), []byte("value"))
	}
	if err := tbl.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Get(fmt.Sprintf("row%06d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	tbl, err := kvstore.Open(vfs.NewMemFS(), "/t", kvstore.Config{FlushThresholdBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tbl.Put(fmt.Sprintf("row%06d", i), []byte("value"))
	}
	tbl.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Scan("row000500", "row001500"); err != nil {
			b.Fatal(err)
		}
	}
}

package kvstore_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func openMem(t *testing.T, cfg kvstore.Config) (*kvstore.Table, vfs.FileSystem) {
	t.Helper()
	fs := vfs.NewMemFS()
	tbl, err := kvstore.Open(fs, "/hbase/table", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, fs
}

func TestPutGetDelete(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{})
	if err := tbl.Put("row1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get("row1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("get = %q err=%v", got, err)
	}
	if err := tbl.Put("row1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Get("row1")
	if string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if err := tbl.Delete("row1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get("row1"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key readable: %v", err)
	}
	if _, err := tbl.Get("ghost"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{})
	if err := tbl.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestFlushCreatesStoreFilesAndTruncatesWAL(t *testing.T) {
	tbl, fs := openMem(t, kvstore.Config{FlushThresholdBytes: 1 << 40})
	for i := 0; i < 50; i++ {
		if err := tbl.Put(fmt.Sprintf("k%03d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.StoreFileCount() != 0 {
		t.Fatal("flushed too early")
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tbl.StoreFileCount() != 1 {
		t.Fatalf("store files = %d", tbl.StoreFileCount())
	}
	if tbl.MemStoreBytes() != 0 {
		t.Fatal("memstore not cleared")
	}
	if vfs.Exists(fs, "/hbase/table/wal") {
		t.Fatal("WAL survived flush")
	}
	// Reads hit the store file now.
	got, err := tbl.Get("k007")
	if err != nil || string(got) != "value" {
		t.Fatalf("get after flush: %q err=%v", got, err)
	}
}

func TestAutoFlushOnThreshold(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 256})
	for i := 0; i < 100; i++ {
		if err := tbl.Put(fmt.Sprintf("key-%03d", i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Flushes == 0 {
		t.Fatal("threshold never triggered a flush")
	}
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 1 << 40, CompactTrigger: 100})
	// Three generations: write, overwrite, delete — flushing between each.
	for i := 0; i < 10; i++ {
		tbl.Put(fmt.Sprintf("k%d", i), []byte("gen1"))
	}
	tbl.Flush()
	for i := 0; i < 5; i++ {
		tbl.Put(fmt.Sprintf("k%d", i), []byte("gen2"))
	}
	tbl.Flush()
	tbl.Delete("k9")
	tbl.Flush()
	if tbl.StoreFileCount() != 3 {
		t.Fatalf("store files = %d, want 3", tbl.StoreFileCount())
	}
	if err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	if tbl.StoreFileCount() != 1 {
		t.Fatalf("store files after compact = %d", tbl.StoreFileCount())
	}
	// Newest versions won; tombstone dropped the key.
	if got, _ := tbl.Get("k0"); string(got) != "gen2" {
		t.Fatalf("k0 = %q", got)
	}
	if got, _ := tbl.Get("k7"); string(got) != "gen1" {
		t.Fatalf("k7 = %q", got)
	}
	if _, err := tbl.Get("k9"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatal("tombstoned key resurrected by compaction")
	}
	if n, _ := tbl.Len(); n != 9 {
		t.Fatalf("len = %d, want 9", n)
	}
}

func TestAutoCompactTrigger(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 1 << 40, CompactTrigger: 3})
	for gen := 0; gen < 3; gen++ {
		tbl.Put(fmt.Sprintf("gen%d", gen), []byte("x"))
		tbl.Flush()
	}
	if tbl.Compactions == 0 {
		t.Fatal("compaction trigger never fired")
	}
	if tbl.StoreFileCount() != 1 {
		t.Fatalf("store files = %d", tbl.StoreFileCount())
	}
}

func TestScanRange(t *testing.T) {
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 1 << 40})
	for _, k := range []string{"apple", "banana", "cherry", "date", "fig"} {
		tbl.Put(k, []byte("fruit:"+k))
	}
	tbl.Flush()
	tbl.Put("elderberry", []byte("fruit:elderberry")) // in MemStore only
	tbl.Delete("cherry")

	kvs, err := tbl.Scan("banana", "fig")
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, kv := range kvs {
		keys = append(keys, kv.Key)
	}
	want := []string{"banana", "date", "elderberry"}
	if len(keys) != len(want) {
		t.Fatalf("scan keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys = %v, want %v", keys, want)
		}
	}
	// Unbounded scan includes everything live.
	all, _ := tbl.Scan("", "")
	if len(all) != 5 {
		t.Fatalf("full scan = %d keys", len(all))
	}
}

func TestWALRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	tbl, err := kvstore.Open(fs, "/t", kvstore.Config{FlushThresholdBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Put("durable", []byte("yes"))
	tbl.Put("mutable", []byte("v1"))
	tbl.Put("mutable", []byte("v2"))
	tbl.Delete("durable")
	// "Crash": reopen from the same filesystem without flushing.
	tbl2, err := kvstore.Open(fs, "/t", kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.Get("durable"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatal("delete lost in recovery")
	}
	got, err := tbl2.Get("mutable")
	if err != nil || string(got) != "v2" {
		t.Fatalf("recovered value = %q err=%v", got, err)
	}
	// New writes after recovery use higher sequence numbers.
	tbl2.Put("mutable", []byte("v3"))
	got, _ = tbl2.Get("mutable")
	if string(got) != "v3" {
		t.Fatalf("post-recovery write lost: %q", got)
	}
}

func TestReopenAfterFlushAndMore(t *testing.T) {
	fs := vfs.NewMemFS()
	tbl, _ := kvstore.Open(fs, "/t", kvstore.Config{FlushThresholdBytes: 1 << 40})
	tbl.Put("a", []byte("1"))
	tbl.Flush()
	tbl.Put("b", []byte("2")) // only in WAL

	tbl2, err := kvstore.Open(fs, "/t", kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		got, err := tbl2.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("%s = %q err=%v", k, got, err)
		}
	}
	// Sequence numbers must not regress: overwrite wins after reopen.
	tbl2.Put("a", []byte("1b"))
	tbl2.Flush()
	got, _ := tbl2.Get("a")
	if string(got) != "1b" {
		t.Fatalf("seq regression: a = %q", got)
	}
}

func TestModelCheck(t *testing.T) {
	// Property: a long random mixture of puts/deletes/flushes/compactions
	// always agrees with a plain map.
	tbl, _ := openMem(t, kvstore.Config{FlushThresholdBytes: 2 << 10, CompactTrigger: 3})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("row%02d", i)
	}
	for op := 0; op < 2000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0:
			if err := tbl.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 1:
			if err := tbl.Flush(); err != nil {
				t.Fatal(err)
			}
		default:
			v := fmt.Sprintf("v%d", op)
			if err := tbl.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	for _, k := range keys {
		got, err := tbl.Get(k)
		want, ok := model[k]
		if ok {
			if err != nil || string(got) != want {
				t.Fatalf("%s = %q err=%v, want %q", k, got, err, want)
			}
		} else if !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("%s should be absent, got %q err=%v", k, got, err)
		}
	}
	n, _ := tbl.Len()
	if n != len(model) {
		t.Fatalf("len = %d, model %d", n, len(model))
	}
}

func TestTableOnHDFS(t *testing.T) {
	// The lecture's point: the store's files live on HDFS and inherit its
	// replication and fault tolerance.
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(4, 1))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 3, Config: hdfs.Config{Replication: 3}})
	if err != nil {
		t.Fatal(err)
	}
	client := dfs.Client(hdfs.GatewayNode)
	tbl, err := kvstore.Open(client, "/hbase/usertable", kvstore.Config{FlushThresholdBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Put(fmt.Sprintf("user%03d", i), []byte("profile")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Lose a DataNode; the table still reads fine from replicas.
	dfs.DataNode(0).Kill()
	eng.Advance(60_000_000_000)
	got, err := tbl.Get("user010")
	if err != nil || string(got) != "profile" {
		t.Fatalf("get after datanode loss: %q err=%v", got, err)
	}
	rep, _ := dfs.Fsck()
	if !rep.Healthy() {
		t.Fatalf("fsck after loss:\n%s", rep)
	}
}

// Package shell implements the `hadoop fs` command set the paper's second
// assignment has students execute and record "to observe how HDFS
// transforms, stores, replicates, and abstracts the actual data": -ls,
// -put, -get/-copyToLocal, -cat, -tail, -rm/-rmr, -mkdir, -mv, -du,
// -count, -stat, -setrep, plus fsck and -locations for block-level
// inspection. It works over any vfs.FileSystem; the HDFS-specific
// commands light up when the target implements the corresponding
// interfaces.
package shell

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hdfs"
	"repro/internal/iofmt"
	"repro/internal/vfs"
)

// Shell executes fs commands against a target filesystem, with a local
// filesystem as the other side of -put / -get transfers.
type Shell struct {
	// FS is the target (typically the HDFS client; any vfs works).
	FS vfs.FileSystem
	// Local is the source/destination for -put, -get and -copyToLocal.
	Local vfs.FileSystem
	// Out receives command output.
	Out io.Writer
	// User appears in listings (the course used individual accounts).
	User string
}

// replicator is implemented by filesystems supporting -setrep.
type replicator interface {
	SetReplication(path string, repl int) error
}

// auditor is implemented by filesystems supporting fsck.
type auditor interface {
	Fsck(path string) (*hdfs.FsckReport, error)
}

// detailAuditor is implemented by filesystems whose fsck supports the
// -blocks/-locations detail flags.
type detailAuditor interface {
	FsckWith(path string, opts hdfs.FsckOpts) (*hdfs.FsckReport, error)
}

// locator is implemented by filesystems exposing block locations.
type locator interface {
	BlockLocations(path string) ([]hdfs.BlockLocation, error)
}

// ErrUsage reports a malformed command line.
var ErrUsage = errors.New("shell: usage error")

func usage(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Run executes one command, e.g. Run("-ls", "/data").
func (s *Shell) Run(args ...string) error {
	if len(args) == 0 {
		return usage("empty command")
	}
	if s.User == "" {
		s.User = "student"
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "-ls":
		return s.ls(rest, false)
	case "-lsr":
		return s.ls(rest, true)
	case "-mkdir":
		return s.each(rest, 1, s.FS.Mkdir)
	case "-cat":
		return s.each(rest, 1, s.cat)
	case "-text":
		return s.each(rest, 1, s.text)
	case "-tail":
		return s.each(rest, 1, s.tail)
	case "-rm":
		return s.each(rest, 1, func(p string) error { return s.FS.Remove(p, false) })
	case "-rmr":
		return s.each(rest, 1, func(p string) error { return s.FS.Remove(p, true) })
	case "-put", "-copyFromLocal":
		return s.transfer(rest, s.Local, s.FS)
	case "-get", "-copyToLocal":
		return s.transfer(rest, s.FS, s.Local)
	case "-mv":
		if len(rest) != 2 {
			return usage("-mv <src> <dst>")
		}
		return s.FS.Rename(rest[0], rest[1])
	case "-du":
		return s.du(rest)
	case "-count":
		return s.count(rest)
	case "-stat":
		return s.each(rest, 1, s.stat)
	case "-setrep":
		return s.setrep(rest)
	case "-locations":
		return s.each(rest, 1, s.locations)
	case "-fsck", "fsck":
		return s.fsck(rest)
	case "-help":
		return s.help()
	default:
		return usage("unknown command %q (try -help)", cmd)
	}
}

// RunScript executes newline-separated commands ("fs -ls /" prefixes and
// blank/comment lines allowed), stopping at the first error.
func (s *Shell) RunScript(script string) error {
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		for len(fields) > 0 && (fields[0] == "hadoop" || fields[0] == "fs") {
			fields = fields[1:]
		}
		fmt.Fprintf(s.Out, "$ hadoop fs %s\n", strings.Join(fields, " "))
		if err := s.Run(fields...); err != nil {
			return fmt.Errorf("shell: %q: %w", line, err)
		}
	}
	return nil
}

func (s *Shell) each(args []string, min int, fn func(string) error) error {
	if len(args) < min {
		return usage("expected at least %d path(s)", min)
	}
	for _, p := range args {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

func (s *Shell) formatEntry(fi vfs.FileInfo) string {
	mode := "-rw-r--r--"
	repl := "-"
	if fi.IsDir {
		mode = "drwxr-xr-x"
	} else if fi.Replication > 0 {
		repl = strconv.Itoa(fi.Replication)
	}
	return fmt.Sprintf("%s %3s %-8s supergroup %12d %s", mode, repl, s.User, fi.Size, fi.Path)
}

func (s *Shell) ls(args []string, recursive bool) error {
	if len(args) == 0 {
		args = []string{"/"}
	}
	for _, p := range args {
		fi, err := s.FS.Stat(p)
		if err != nil {
			return err
		}
		if !fi.IsDir {
			fmt.Fprintln(s.Out, s.formatEntry(fi))
			continue
		}
		entries, err := s.listAll(p, recursive)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "Found %d items\n", len(entries))
		for _, e := range entries {
			fmt.Fprintln(s.Out, s.formatEntry(e))
		}
	}
	return nil
}

func (s *Shell) listAll(p string, recursive bool) ([]vfs.FileInfo, error) {
	entries, err := s.FS.List(p)
	if err != nil {
		return nil, err
	}
	if !recursive {
		return entries, nil
	}
	var out []vfs.FileInfo
	for _, e := range entries {
		out = append(out, e)
		if e.IsDir {
			sub, err := s.listAll(e.Path, true)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	return out, nil
}

func (s *Shell) cat(p string) error {
	data, err := vfs.ReadFile(s.FS, p)
	if err != nil {
		return err
	}
	_, err = s.Out.Write(data)
	return err
}

// text is the codec- and container-aware -cat: compressed files are
// inflated and SequenceFiles render one "key<TAB>value" line per record,
// exactly Hadoop's `fs -text`.
func (s *Shell) text(p string) error {
	data, err := vfs.ReadFile(s.FS, p)
	if err != nil {
		return err
	}
	out, err := iofmt.DecodeToText(p, data)
	if err != nil {
		return fmt.Errorf("shell: -text %s: %w", p, err)
	}
	_, err = s.Out.Write(out)
	return err
}

func (s *Shell) tail(p string) error {
	data, err := vfs.ReadFile(s.FS, p)
	if err != nil {
		return err
	}
	const kb = 1024
	if len(data) > kb {
		data = data[len(data)-kb:]
	}
	_, err = s.Out.Write(data)
	return err
}

func (s *Shell) transfer(args []string, from, to vfs.FileSystem) error {
	if len(args) != 2 {
		return usage("expected <src> <dst>")
	}
	if from == nil || to == nil {
		return usage("no local filesystem configured")
	}
	n, err := vfs.CopyTree(from, args[0], to, args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "copied %d bytes: %s -> %s\n", n, args[0], args[1])
	return nil
}

func (s *Shell) du(args []string) error {
	if len(args) == 0 {
		args = []string{"/"}
	}
	for _, p := range args {
		entries, err := s.FS.List(p)
		if err != nil {
			// -du of a plain file prints its size.
			fi, serr := s.FS.Stat(p)
			if serr != nil {
				return err
			}
			fmt.Fprintf(s.Out, "%-12d %s\n", fi.Size, fi.Path)
			continue
		}
		for _, e := range entries {
			size := e.Size
			if e.IsDir {
				if du, err := vfs.DiskUsage(s.FS, e.Path); err == nil {
					size = du
				}
			}
			fmt.Fprintf(s.Out, "%-12d %s\n", size, e.Path)
		}
	}
	return nil
}

func (s *Shell) count(args []string) error {
	if len(args) == 0 {
		args = []string{"/"}
	}
	for _, p := range args {
		var dirs, files, bytes int64
		err := vfs.Walk(s.FS, p, func(fi vfs.FileInfo) error {
			files++
			bytes += fi.Size
			return nil
		})
		if err != nil {
			return err
		}
		// Count directories separately.
		var walkDirs func(string) error
		walkDirs = func(dp string) error {
			fi, err := s.FS.Stat(dp)
			if err != nil || !fi.IsDir {
				return err
			}
			dirs++
			children, err := s.FS.List(dp)
			if err != nil {
				return err
			}
			for _, c := range children {
				if c.IsDir {
					if err := walkDirs(c.Path); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := walkDirs(p); err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "%12d %12d %12d %s\n", dirs, files, bytes, vfs.Clean(p))
	}
	return nil
}

func (s *Shell) stat(p string) error {
	fi, err := s.FS.Stat(p)
	if err != nil {
		return err
	}
	kind := "regular file"
	if fi.IsDir {
		kind = "directory"
	}
	fmt.Fprintf(s.Out, "%s: %s, %d bytes, replication %d, block size %d\n",
		fi.Path, kind, fi.Size, fi.Replication, fi.BlockSize)
	return nil
}

func (s *Shell) setrep(args []string) error {
	if len(args) != 2 {
		return usage("-setrep <replication> <path>")
	}
	r, ok := s.FS.(replicator)
	if !ok {
		return fmt.Errorf("shell: target filesystem does not support replication")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return usage("bad replication %q", args[0])
	}
	if err := r.SetReplication(args[1], n); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "Replication %d set: %s\n", n, args[1])
	return nil
}

func (s *Shell) locations(p string) error {
	l, ok := s.FS.(locator)
	if !ok {
		return fmt.Errorf("shell: target filesystem has no block locations")
	}
	locs, err := l.BlockLocations(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "%s: %d block(s)\n", p, len(locs))
	for _, loc := range locs {
		fmt.Fprintf(s.Out, "  %v len=%d offset=%d hosts=%s\n",
			loc.Block, loc.Length, loc.Offset, strings.Join(loc.Hosts, ","))
	}
	return nil
}

func (s *Shell) fsck(args []string) error {
	a, ok := s.FS.(auditor)
	if !ok {
		return fmt.Errorf("shell: target filesystem has no fsck")
	}
	p := "/"
	var opts hdfs.FsckOpts
	for _, arg := range args {
		switch arg {
		case "-blocks":
			opts.Blocks = true
		case "-locations":
			opts.Locations = true
		default:
			if strings.HasPrefix(arg, "-") {
				return usage("-fsck: unknown flag %s", arg)
			}
			p = arg
		}
	}
	var rep *hdfs.FsckReport
	var err error
	if da, can := s.FS.(detailAuditor); can && (opts.Blocks || opts.Locations) {
		rep, err = da.FsckWith(p, opts)
	} else {
		rep, err = a.Fsck(p)
	}
	if err != nil {
		return err
	}
	_, err = io.WriteString(s.Out, rep.String())
	return err
}

func (s *Shell) help() error {
	fmt.Fprint(s.Out, `Usage: hadoop fs <command>
  -ls <path>            list directory
  -lsr <path>           list recursively
  -mkdir <path>         create directory (and parents)
  -put <local> <dfs>    copy from local filesystem (alias -copyFromLocal)
  -get <dfs> <local>    copy to local filesystem (alias -copyToLocal)
  -cat <path>           print file contents
  -text <path>          print file contents, decoding codecs and SequenceFiles
  -tail <path>          print last 1KB of a file
  -mv <src> <dst>       rename / move
  -rm <path>            delete a file
  -rmr <path>           delete recursively
  -du <path>            per-entry disk usage
  -count <path>         dirs / files / bytes
  -stat <path>          file metadata
  -setrep <n> <path>    change replication factor
  -locations <path>     block locations (HDFS)
  -fsck [path] [-blocks] [-locations]
                        filesystem audit (HDFS); -blocks lists block IDs,
                        -locations adds replica hosts
`)
	return nil
}

package shell_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newShell(t *testing.T) (*shell.Shell, *hdfs.MiniDFS, *bytes.Buffer) {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(4, 1))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{Seed: 1, Config: hdfs.Config{BlockSize: 1024, Replication: 2}})
	if err != nil {
		t.Fatal(err)
	}
	out := &bytes.Buffer{}
	sh := &shell.Shell{
		FS:    dfs.Client(hdfs.GatewayNode),
		Local: vfs.NewMemFS(),
		Out:   out,
		User:  "student",
	}
	return sh, dfs, out
}

func TestPutLsCatGetRoundTrip(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/home/data.txt", []byte("hello hdfs\n")); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-mkdir", "/user/student"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/home/data.txt", "/user/student/data.txt"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-ls", "/user/student"); err != nil {
		t.Fatal(err)
	}
	listing := out.String()
	if !strings.Contains(listing, "Found 1 items") || !strings.Contains(listing, "/user/student/data.txt") {
		t.Fatalf("ls output:\n%s", listing)
	}
	if !strings.Contains(listing, "-rw-r--r--   2") {
		t.Fatalf("ls should show replication 2:\n%s", listing)
	}
	out.Reset()
	if err := sh.Run("-cat", "/user/student/data.txt"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hello hdfs\n" {
		t.Fatalf("cat = %q", out.String())
	}
	if err := sh.Run("-get", "/user/student/data.txt", "/home/back.txt"); err != nil {
		t.Fatal(err)
	}
	back, err := vfs.ReadFile(sh.Local, "/home/back.txt")
	if err != nil || string(back) != "hello hdfs\n" {
		t.Fatalf("get round trip: %q err=%v", back, err)
	}
}

func TestSetrepAndFsck(t *testing.T) {
	sh, dfs, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/d.txt", bytes.Repeat([]byte("x"), 3000)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/d.txt", "/d.txt"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-setrep", "3", "/d.txt"); err != nil {
		t.Fatal(err)
	}
	dfs.Engine.Advance(30_000_000_000) // let the monitor add replicas
	out.Reset()
	if err := sh.Run("-fsck", "/"); err != nil {
		t.Fatal(err)
	}
	rep := out.String()
	if !strings.Contains(rep, "is HEALTHY") {
		t.Fatalf("fsck:\n%s", rep)
	}
	out.Reset()
	if err := sh.Run("-locations", "/d.txt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 block(s)") {
		t.Fatalf("locations:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "hosts=node000") && !strings.Contains(out.String(), "node00") {
		t.Fatalf("locations missing hosts:\n%s", out.String())
	}
}

func TestFsckDetailFlags(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/d.txt", bytes.Repeat([]byte("x"), 3000)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/d.txt", "/d.txt"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		wants   []string
		rejects []string
	}{
		{name: "plain", args: []string{"-fsck", "/"},
			wants: []string{"is HEALTHY"}, rejects: []string{"0. blk_"}},
		{name: "blocks", args: []string{"-fsck", "/", "-blocks"},
			wants: []string{"/d.txt 3000 bytes, 3 block(s):", "0. blk_", "2. blk_"}, rejects: []string{"[node"}},
		{name: "locations", args: []string{"-fsck", "/d.txt", "-locations"},
			wants: []string{"0. blk_", "[node00"}},
		{name: "flag order free", args: []string{"-fsck", "-locations", "/d.txt"},
			wants: []string{"[node00"}},
		{name: "missing path", args: []string{"-fsck", "/nope", "-blocks"}, wantErr: true},
		{name: "unknown flag", args: []string{"-fsck", "/", "-bogus"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out.Reset()
			err := sh.Run(tc.args...)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got:\n%s", out.String())
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tc.wants {
				if !strings.Contains(out.String(), w) {
					t.Fatalf("missing %q:\n%s", w, out.String())
				}
			}
			for _, r := range tc.rejects {
				if strings.Contains(out.String(), r) {
					t.Fatalf("unexpected %q:\n%s", r, out.String())
				}
			}
		})
	}
}

func TestDuCountStat(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(sh.Local, "/b", make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-mkdir", "/data/sub"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/a", "/data/a"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/b", "/data/sub/b"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-count", "/data"); err != nil {
		t.Fatal(err)
	}
	// 2 dirs (/data, /data/sub), 2 files, 30 bytes.
	if !strings.Contains(out.String(), "2") || !strings.Contains(out.String(), "30") {
		t.Fatalf("count:\n%s", out.String())
	}
	out.Reset()
	if err := sh.Run("-du", "/data"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/data/sub") {
		t.Fatalf("du:\n%s", out.String())
	}
	out.Reset()
	if err := sh.Run("-stat", "/data/a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "regular file, 10 bytes") {
		t.Fatalf("stat:\n%s", out.String())
	}
}

func TestMvRmRmr(t *testing.T) {
	sh, _, _ := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/f", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/f", "/f"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-mv", "/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-rm", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-mkdir", "/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-rmr", "/d"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(sh.FS, "/d") {
		t.Fatal("rmr left directory")
	}
}

func TestRunScriptAndTranscript(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/data.txt", []byte("a b c\n")); err != nil {
		t.Fatal(err)
	}
	script := `
# stage and inspect, as in the assignment hand-in
hadoop fs -mkdir /user/student
hadoop fs -put /data.txt /user/student/data.txt
fs -ls /user/student
-stat /user/student/data.txt
`
	if err := sh.RunScript(script); err != nil {
		t.Fatal(err)
	}
	transcript := out.String()
	for _, want := range []string{"$ hadoop fs -mkdir", "$ hadoop fs -ls", "Found 1 items"} {
		if !strings.Contains(transcript, want) {
			t.Fatalf("transcript missing %q:\n%s", want, transcript)
		}
	}
}

func TestScriptStopsOnError(t *testing.T) {
	sh, _, _ := newShell(t)
	err := sh.RunScript("-cat /missing\n-mkdir /never")
	if err == nil {
		t.Fatal("script with failing command succeeded")
	}
	if vfs.Exists(sh.FS, "/never") {
		t.Fatal("script continued past error")
	}
}

func TestUsageErrors(t *testing.T) {
	sh, _, _ := newShell(t)
	for _, args := range [][]string{
		{},
		{"-frobnicate"},
		{"-mv", "/only-one"},
		{"-setrep", "x", "/f"},
		{"-put", "/just-src"},
	} {
		if err := sh.Run(args...); !errors.Is(err, shell.ErrUsage) {
			t.Fatalf("args %v: want ErrUsage, got %v", args, err)
		}
	}
}

func TestSetrepUnsupportedFS(t *testing.T) {
	sh := &shell.Shell{FS: vfs.NewMemFS(), Local: vfs.NewMemFS(), Out: &bytes.Buffer{}}
	if err := sh.Run("-setrep", "2", "/f"); err == nil {
		t.Fatal("setrep on MemFS should fail")
	}
	if err := sh.Run("-fsck"); err == nil {
		t.Fatal("fsck on MemFS should fail")
	}
}

func TestHelpListsCommands(t *testing.T) {
	sh, _, out := newShell(t)
	if err := sh.Run("-help"); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"-ls", "-put", "-copyToLocal", "-fsck", "-setrep"} {
		if !strings.Contains(out.String(), cmd) {
			t.Fatalf("help missing %s", cmd)
		}
	}
}

func TestTailTruncates(t *testing.T) {
	sh, _, out := newShell(t)
	big := bytes.Repeat([]byte("0123456789abcdef"), 200) // 3200 bytes
	if err := vfs.WriteFile(sh.Local, "/big", big); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/big", "/big"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-tail", "/big"); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1024 {
		t.Fatalf("tail returned %d bytes, want 1024", out.Len())
	}
}

func TestLsrRecursive(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-mkdir", "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/f", "/a/b/c/deep.txt"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-lsr", "/a"); err != nil {
		t.Fatal(err)
	}
	listing := out.String()
	for _, want := range []string{"/a/b", "/a/b/c", "/a/b/c/deep.txt"} {
		if !strings.Contains(listing, want) {
			t.Fatalf("-lsr missing %q:\n%s", want, listing)
		}
	}
}

func TestDuOnPlainFile(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/f", bytes.Repeat([]byte("z"), 77)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/f", "/file.bin"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-du", "/file.bin"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "77") {
		t.Fatalf("-du on file:\n%s", out.String())
	}
}

func TestLsOnPlainFile(t *testing.T) {
	sh, _, out := newShell(t)
	if err := vfs.WriteFile(sh.Local, "/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run("-put", "/f", "/only.txt"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.Run("-ls", "/only.txt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/only.txt") || strings.Contains(out.String(), "Found") {
		t.Fatalf("-ls on file should print one entry without a count:\n%s", out.String())
	}
}

package shell_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/iofmt"
	"repro/internal/shell"
	"repro/internal/vfs"
)

// textFixtures builds the -text test files: a gzipped copy of a.txt, a
// small SequenceFile, and three corrupt variants (wrong magic, truncated
// block, unregistered codec name).
func textFixtures(t *testing.T) map[string][]byte {
	t.Helper()
	gz, err := iofmt.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gzData, err := gz.Compress([]byte("hello hdfs\n"))
	if err != nil {
		t.Fatal(err)
	}

	var seqBuf bytes.Buffer
	sw, err := iofmt.NewSeqWriter(&seqBuf, iofmt.SeqWriterOptions{Codec: gz, BlockRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"k1", "v1"}, {"k2", "v2"}, {"k3", "v3"}} {
		if err := sw.Append([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	seq := seqBuf.Bytes()

	// An otherwise-valid header naming a codec nobody registered.
	unk := []byte(iofmt.SeqMagic)
	unk = append(unk, 1, 5)
	unk = append(unk, "nosuc"...)
	unk = append(unk, make([]byte, iofmt.SyncSize)...)

	return map[string][]byte{
		"/data/a.txt.gz":     gzData,
		"/data/a.seq":        seq,
		"/data/bad.gz":       []byte("this is not a gzip stream"),
		"/data/notseq.seq":   []byte("this is not a sequencefile"),
		"/data/trunc.seq":    seq[:len(seq)-4],
		"/data/unkcodec.seq": unk,
	}
}

// TestCommandErrorPaths pins the failure behaviour of the inspection
// commands the second assignment leans on (-du, -setrep, -stat, -rm):
// missing paths, malformed replication factors, and directory-vs-file
// mixups must fail with the right sentinel — and the near-miss positive
// cases must keep working, so the table documents the boundary exactly.
func TestCommandErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		// wantErr, when set, is matched with errors.Is.
		wantErr error
		// wantAnyErr accepts any non-nil error (for message-only errors).
		wantAnyErr bool
		// wantOut, when set (and no error expected), must appear in output.
		wantOut string
	}{
		// -du
		{name: "du missing path", args: []string{"-du", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "du plain file prints size", args: []string{"-du", "/data/a.txt"}, wantOut: "11"},
		{name: "du directory lists entries", args: []string{"-du", "/data"}, wantOut: "/data/a.txt"},

		// -setrep
		{name: "setrep missing args", args: []string{"-setrep", "2"}, wantErr: shell.ErrUsage},
		{name: "setrep non-numeric factor", args: []string{"-setrep", "many", "/data/a.txt"}, wantErr: shell.ErrUsage},
		{name: "setrep factor below one", args: []string{"-setrep", "0", "/data/a.txt"}, wantAnyErr: true},
		{name: "setrep missing file", args: []string{"-setrep", "2", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "setrep on directory", args: []string{"-setrep", "2", "/data"}, wantErr: vfs.ErrIsDir},
		{name: "setrep on file succeeds", args: []string{"-setrep", "2", "/data/a.txt"}, wantOut: "Replication 2 set"},

		// -stat
		{name: "stat missing path", args: []string{"-stat", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "stat no args", args: []string{"-stat"}, wantErr: shell.ErrUsage},
		{name: "stat file reports kind", args: []string{"-stat", "/data/a.txt"}, wantOut: "regular file"},
		{name: "stat directory reports kind", args: []string{"-stat", "/data"}, wantOut: "directory"},

		// -rm
		{name: "rm missing path", args: []string{"-rm", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "rm no args", args: []string{"-rm"}, wantErr: shell.ErrUsage},
		{name: "rm non-empty dir without -rmr", args: []string{"-rm", "/data"}, wantErr: vfs.ErrNotEmpty},
		{name: "rm plain file succeeds", args: []string{"-rm", "/data/b.txt"}},

		// -text: decode paths and their failure modes.
		{name: "text no args", args: []string{"-text"}, wantErr: shell.ErrUsage},
		{name: "text missing path", args: []string{"-text", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "text plain file passes through", args: []string{"-text", "/data/a.txt"}, wantOut: "hello hdfs"},
		{name: "text inflates gzip", args: []string{"-text", "/data/a.txt.gz"}, wantOut: "hello hdfs"},
		{name: "text renders sequencefile", args: []string{"-text", "/data/a.seq"}, wantOut: "k1\tv1"},
		{name: "text gz with bad magic", args: []string{"-text", "/data/bad.gz"}, wantErr: iofmt.ErrCorrupt},
		{name: "text seq with bad magic", args: []string{"-text", "/data/notseq.seq"}, wantErr: iofmt.ErrBadMagic},
		{name: "text truncated seq block", args: []string{"-text", "/data/trunc.seq"}, wantErr: iofmt.ErrTruncated},
		{name: "text unknown seq codec", args: []string{"-text", "/data/unkcodec.seq"}, wantErr: iofmt.ErrUnknownCodec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh cluster per case: /data/a.txt (11 bytes), /data/b.txt,
			// plus format fixtures (valid and deliberately broken) for -text.
			sh, _, out := newShell(t)
			if err := vfs.WriteFile(sh.Local, "/a.txt", []byte("hello hdfs\n")); err != nil {
				t.Fatal(err)
			}
			for _, cmd := range [][]string{
				{"-mkdir", "/data"},
				{"-put", "/a.txt", "/data/a.txt"},
				{"-put", "/a.txt", "/data/b.txt"},
			} {
				if err := sh.Run(cmd...); err != nil {
					t.Fatal(err)
				}
			}
			for path, data := range textFixtures(t) {
				if err := vfs.WriteFile(sh.FS, path, data); err != nil {
					t.Fatal(err)
				}
			}
			out.Reset()

			err := sh.Run(tc.args...)
			switch {
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("%v: want %v, got %v", tc.args, tc.wantErr, err)
				}
			case tc.wantAnyErr:
				if err == nil {
					t.Fatalf("%v: want error, got nil", tc.args)
				}
			default:
				if err != nil {
					t.Fatalf("%v: unexpected error %v", tc.args, err)
				}
				if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
					t.Fatalf("%v: output missing %q:\n%s", tc.args, tc.wantOut, out.String())
				}
			}
		})
	}
}

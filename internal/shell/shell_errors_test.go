package shell_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/shell"
	"repro/internal/vfs"
)

// TestCommandErrorPaths pins the failure behaviour of the inspection
// commands the second assignment leans on (-du, -setrep, -stat, -rm):
// missing paths, malformed replication factors, and directory-vs-file
// mixups must fail with the right sentinel — and the near-miss positive
// cases must keep working, so the table documents the boundary exactly.
func TestCommandErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		// wantErr, when set, is matched with errors.Is.
		wantErr error
		// wantAnyErr accepts any non-nil error (for message-only errors).
		wantAnyErr bool
		// wantOut, when set (and no error expected), must appear in output.
		wantOut string
	}{
		// -du
		{name: "du missing path", args: []string{"-du", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "du plain file prints size", args: []string{"-du", "/data/a.txt"}, wantOut: "11"},
		{name: "du directory lists entries", args: []string{"-du", "/data"}, wantOut: "/data/a.txt"},

		// -setrep
		{name: "setrep missing args", args: []string{"-setrep", "2"}, wantErr: shell.ErrUsage},
		{name: "setrep non-numeric factor", args: []string{"-setrep", "many", "/data/a.txt"}, wantErr: shell.ErrUsage},
		{name: "setrep factor below one", args: []string{"-setrep", "0", "/data/a.txt"}, wantAnyErr: true},
		{name: "setrep missing file", args: []string{"-setrep", "2", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "setrep on directory", args: []string{"-setrep", "2", "/data"}, wantErr: vfs.ErrIsDir},
		{name: "setrep on file succeeds", args: []string{"-setrep", "2", "/data/a.txt"}, wantOut: "Replication 2 set"},

		// -stat
		{name: "stat missing path", args: []string{"-stat", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "stat no args", args: []string{"-stat"}, wantErr: shell.ErrUsage},
		{name: "stat file reports kind", args: []string{"-stat", "/data/a.txt"}, wantOut: "regular file"},
		{name: "stat directory reports kind", args: []string{"-stat", "/data"}, wantOut: "directory"},

		// -rm
		{name: "rm missing path", args: []string{"-rm", "/nope"}, wantErr: vfs.ErrNotExist},
		{name: "rm no args", args: []string{"-rm"}, wantErr: shell.ErrUsage},
		{name: "rm non-empty dir without -rmr", args: []string{"-rm", "/data"}, wantErr: vfs.ErrNotEmpty},
		{name: "rm plain file succeeds", args: []string{"-rm", "/data/b.txt"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fresh cluster per case: /data/a.txt (11 bytes), /data/b.txt.
			sh, _, out := newShell(t)
			if err := vfs.WriteFile(sh.Local, "/a.txt", []byte("hello hdfs\n")); err != nil {
				t.Fatal(err)
			}
			for _, cmd := range [][]string{
				{"-mkdir", "/data"},
				{"-put", "/a.txt", "/data/a.txt"},
				{"-put", "/a.txt", "/data/b.txt"},
			} {
				if err := sh.Run(cmd...); err != nil {
					t.Fatal(err)
				}
			}
			out.Reset()

			err := sh.Run(tc.args...)
			switch {
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("%v: want %v, got %v", tc.args, tc.wantErr, err)
				}
			case tc.wantAnyErr:
				if err == nil {
					t.Fatalf("%v: want error, got nil", tc.args)
				}
			default:
				if err != nil {
					t.Fatalf("%v: unexpected error %v", tc.args, err)
				}
				if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
					t.Fatalf("%v: output missing %q:\n%s", tc.args, tc.wantOut, out.String())
				}
			}
		})
	}
}

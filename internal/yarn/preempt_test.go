package yarn_test

import (
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/yarn"
)

// halfHalfQueues is the two-tenant tree the preemption tests use: each
// queue guaranteed half the cluster, both elastic to the whole of it.
func halfHalfQueues() yarn.QueueConfig {
	return yarn.QueueConfig{
		Name: "root",
		Children: []yarn.QueueConfig{
			{Name: "a", Capacity: 0.5, MaxCapacity: 1.0, UserLimitFactor: 4},
			{Name: "b", Capacity: 0.5, MaxCapacity: 1.0, UserLimitFactor: 4},
		},
	}
}

func longApp(name, user, queue string, tasks int, d time.Duration) yarn.AppSpec {
	spec := yarn.AppSpec{Name: name, User: user, Queue: queue}
	for i := 0; i < tasks; i++ {
		spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
			Resource: yarn.Resource{VCores: 1, MemoryMB: 1024},
			Duration: d,
		})
	}
	return spec
}

// preemptEvents returns the rm.preempt events in the log.
func preemptEvents(rm *yarn.ResourceManager) []history.Event {
	var out []history.Event
	for _, ev := range rm.EventLog().Events() {
		if ev.Type == yarn.EvPreempt {
			out = append(out, ev)
		}
	}
	return out
}

// TestPreemptionRestoresGuarantee is the happy path: queue a overflows
// an idle cluster, queue b arrives, preemption claws b's guarantee
// back, and every kill in the log is justified.
func TestPreemptionRestoresGuarantee(t *testing.T) {
	eng, rm := newCapRM(t, 2, yarn.CapacityOptions{ // 32 vc
		Queues:     halfHalfQueues(),
		Preemption: yarn.PreemptionConfig{Enabled: true},
	})
	a, err := rm.Submit(longApp("hog", "ua", "a", 31, 2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(time.Minute) // a expands into the whole idle cluster
	b, err := rm.Submit(longApp("claim", "ub", "b", 14, 2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(5 * time.Minute) // several preemption rounds
	if rm.Preemptions() == 0 {
		t.Fatal("no preemptions fired; queue b never got its guarantee back")
	}
	usedBy := func(app *yarn.Application) int {
		used := 0
		for _, c := range app.Containers() { // task containers; AM excluded
			if !c.Released() {
				used += c.Resource.VCores
			}
		}
		return used
	}
	// b's demand (AM + 14 tasks = 15 vc) sits under its 16 vc guarantee,
	// so preemption must win ALL of it back.
	if got := usedBy(b); got < 14 {
		t.Fatalf("queue b runs %d task vc after preemption, want its full 14-task demand", got)
	}
	if got := b.PendingRequests(); got != 0 {
		t.Fatalf("queue b still has %d unserved requests", got)
	}
	// a keeps at most its guarantee (16 vc incl. its AM -> ≤15 task vc)
	// plus the one-container overshoot the round granularity allows.
	if got := usedBy(a); got > 16 {
		t.Fatalf("queue a still holds %d task vc, above its guarantee", got)
	}
	if a.Preemptions == 0 {
		t.Fatal("app a recorded no preemptions")
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
}

// TestAMContainerNeverPreempted pins the scheduler's hardest rule:
// however starved the other queue is, application masters are not
// victims — killing one would lose the app, not rebalance it.
func TestAMContainerNeverPreempted(t *testing.T) {
	eng, rm := newCapRM(t, 2, yarn.CapacityOptions{
		Queues:     halfHalfQueues(),
		Preemption: yarn.PreemptionConfig{Enabled: true, MaxPerRound: 32},
	})
	// Ten small apps in queue a: ten AMs spread across the cluster, so a
	// victim plan that ignored the AM rule would certainly hit one.
	var aApps []*yarn.Application
	for i := 0; i < 10; i++ {
		app, err := rm.Submit(longApp("a", "ua", "a", 2, 2*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		aApps = append(aApps, app)
	}
	eng.Advance(time.Minute)
	if _, err := rm.Submit(longApp("b", "ub", "b", 15, 2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	eng.Advance(10 * time.Minute)
	if rm.Preemptions() == 0 {
		t.Fatal("scenario produced no preemptions")
	}
	for _, ev := range preemptEvents(rm) {
		if ev.Attrs["am"] == "1" {
			t.Fatalf("AM container preempted: %v", ev)
		}
	}
	// Every app in the squeezed queue is still alive: its AM survived.
	for _, app := range aApps {
		if app.State != yarn.AppRunning {
			t.Fatalf("app %d lost its AM (state %v)", app.ID, app.State)
		}
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptionConverges pins the no-thrash property: once the starved
// queue has its guarantee, preemption stops — the monitor must not bounce
// containers back and forth between two steady queues.
func TestPreemptionConverges(t *testing.T) {
	eng, rm := newCapRM(t, 2, yarn.CapacityOptions{
		Queues:     halfHalfQueues(),
		Preemption: yarn.PreemptionConfig{Enabled: true},
	})
	if _, err := rm.Submit(longApp("hog", "ua", "a", 31, 3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	eng.Advance(time.Minute)
	if _, err := rm.Submit(longApp("claim", "ub", "b", 14, 3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	eng.Advance(10 * time.Minute)
	settled := rm.Preemptions()
	if settled == 0 {
		t.Fatal("no preemptions fired")
	}
	// Steady state: both queues hold long-running work, nothing finishes,
	// so another half hour of preemption rounds must kill nothing new.
	eng.Advance(30 * time.Minute)
	if got := rm.Preemptions(); got != settled {
		t.Fatalf("preemption thrash: count grew %d -> %d in steady state", settled, got)
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
}

// TestScaleDownNeverKillsLiveContainers drives the autoscaler through a
// grow/shrink cycle and asserts — directly and via the log oracle — that
// scale-down only ever parks empty nodes.
func TestScaleDownNeverKillsLiveContainers(t *testing.T) {
	eng, rm := newCapRM(t, 6, yarn.CapacityOptions{
		Queues:    testQueues(),
		Autoscale: yarn.AutoscaleConfig{Enabled: true, MinNodes: 1, Cooldown: time.Minute},
	})
	if rm.ActiveNodes() != 1 {
		t.Fatalf("pool starts with %d nodes, want MinNodes=1", rm.ActiveNodes())
	}
	app, err := rm.Submit(longApp("burst", "u0", "beta", 40, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(5 * time.Minute)
	grown := rm.ActiveNodes()
	if grown < 3 {
		t.Fatalf("pool grew only to %d nodes under 41 vc of demand", grown)
	}
	drain(t, eng, rm, 30*time.Second, 1000)
	if app.State != yarn.AppFinished {
		t.Fatalf("burst app state %v", app.State)
	}
	// Idle now: cooldowns pass, the pool must shed nodes one per tick
	// back to the floor, and the log oracle verifies each parked node
	// held zero containers at that moment.
	eng.Advance(30 * time.Minute)
	if got := rm.ActiveNodes(); got != 1 {
		t.Fatalf("idle pool still has %d active nodes, want MinNodes=1", got)
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
	// The cycle actually scaled both ways.
	ups, downs := 0, 0
	for _, ev := range rm.EventLog().Events() {
		switch {
		case ev.Type == yarn.EvNodeUp && ev.Attrs["reason"] == "scale_up":
			ups++
		case ev.Type == yarn.EvNodeDown && ev.Attrs["reason"] == "scale_down":
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("expected both scale directions, got %d ups / %d downs", ups, downs)
	}
}

package yarn

import (
	"fmt"
	"strings"
	"time"
)

// StatusPage renders the ResourceManager's scheduler view — the page the
// web UI serves at /scheduler, modeled on the Hadoop RM's queue listing:
// the node pool, then one row per capacity queue (guarantee / ceiling /
// live usage / admitted apps), then the unfinished applications.
func (rm *ResourceManager) StatusPage() string {
	var b strings.Builder
	cap := rm.ClusterCapacity()
	fmt.Fprintf(&b, "Resource Manager (as of %v)\n\n", time.Duration(rm.eng.Now()).Round(time.Millisecond))
	fmt.Fprintf(&b, "Node pool: %d/%d nodes active, %d vcores / %d MB live capacity\n",
		rm.ActiveNodes(), len(rm.nodes), cap.VCores, cap.MemoryMB)
	fmt.Fprintf(&b, "Utilization: %.1f%%   Preemptions: %d   Node-hours: %.2f   Containers launched: %d\n",
		100*rm.Utilization(), rm.Preemptions(), rm.NodeHours(), rm.ContainersLaunched)

	if !rm.capacityMode() {
		fmt.Fprintf(&b, "Scheduler: %s (single queue)\n", rm.sched.Name())
		return b.String()
	}

	b.WriteString("\nQueues:\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %10s %6s\n", "queue", "guarantee", "ceiling", "used", "apps")
	for _, q := range rm.leaves {
		g, m := q.guaranteed(cap), q.maxAllowed(cap)
		fmt.Fprintf(&b, "  %-20s %7d vc %7d vc %7d vc %6d\n",
			q.path, g.VCores, m.VCores, q.used.VCores, len(q.apps))
	}

	live := 0
	for _, app := range rm.apps {
		if app.State != AppFinished {
			live++
		}
	}
	fmt.Fprintf(&b, "\nApplications: %d submitted, %d finished, %d live\n", len(rm.apps), rm.appsFinished, live)
	if live > 0 {
		fmt.Fprintf(&b, "  %-8s %-24s %-16s %-10s %10s %8s %9s\n",
			"id", "name", "queue", "user", "containers", "pending", "preempted")
		for _, app := range rm.apps {
			if app.State == AppFinished {
				continue
			}
			running := 0
			for _, c := range app.containers {
				if !c.Released() {
					running++
				}
			}
			if app.amContainer != nil && !app.amContainer.Released() {
				running++ // the AM's own container
			}
			fmt.Fprintf(&b, "  app%05d %-24s %-16s %-10s %10d %8d %9d\n",
				app.ID, app.Spec.Name, app.Queue, app.User,
				running, len(app.requests), app.Preemptions)
		}
	}
	return b.String()
}

package yarn

import "repro/internal/obs"

// Span names.
const (
	SpanApp       = "yarn.app"
	SpanContainer = "yarn.container"
)

// rmMetrics is the capacity ResourceManager's interned metric bundle.
// All handles are nil-safe, so an RM built without a registry costs
// nothing. reg keeps the registry itself for span recording (nil in
// legacy mode, where every trace operation no-ops).
type rmMetrics struct {
	reg                 *obs.Registry
	events              *obs.Counter
	appsSubmitted       *obs.Counter
	appsFinished        *obs.Counter
	containersAllocated *obs.Counter
	containersReleased  *obs.Counter
	containersPreempted *obs.Counter
	scaleUps            *obs.Counter
	scaleDowns          *obs.Counter
	activeNodes         *obs.Gauge
	pendingApps         *obs.Gauge
}

func newRMMetrics(r *obs.Registry) rmMetrics {
	return rmMetrics{
		reg:                 r,
		events:              r.Counter("rm.events"),
		appsSubmitted:       r.Counter("rm.apps_submitted"),
		appsFinished:        r.Counter("rm.apps_finished"),
		containersAllocated: r.Counter("rm.containers_allocated"),
		containersReleased:  r.Counter("rm.containers_released"),
		containersPreempted: r.Counter("rm.containers_preempted"),
		scaleUps:            r.Counter("rm.scale_ups"),
		scaleDowns:          r.Counter("rm.scale_downs"),
		activeNodes:         r.Gauge("rm.active_nodes"),
		pendingApps:         r.Gauge("rm.pending_apps"),
	}
}

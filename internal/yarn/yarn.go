// Package yarn implements the resource-management layer the paper's
// future work points at ("recent developments ... have moved Hadoop
// beyond MapReduce's limitations in order to support additional
// capabilities such as cluster resource manager [YARN]"): a
// ResourceManager that owns cluster capacity, NodeManagers that host
// containers, applications that negotiate containers for their tasks, and
// pluggable FIFO / fair schedulers.
//
// It runs on the same deterministic sim engine as the rest of the stack,
// which makes the multi-tenancy question behind the whole paper
// measurable: what happens when 35 students share one cluster? (With
// FIFO, the answer is the Fall 2012 deadline queue; with fair sharing,
// small jobs stop starving.)
package yarn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Resource is a container's size: virtual cores and memory.
type Resource struct {
	VCores   int
	MemoryMB int64
}

// Fits reports whether r fits within free.
func (r Resource) Fits(free Resource) bool {
	return r.VCores <= free.VCores && r.MemoryMB <= free.MemoryMB
}

func (r Resource) plus(o Resource) Resource {
	return Resource{VCores: r.VCores + o.VCores, MemoryMB: r.MemoryMB + o.MemoryMB}
}

func (r Resource) minus(o Resource) Resource {
	return Resource{VCores: r.VCores - o.VCores, MemoryMB: r.MemoryMB - o.MemoryMB}
}

// String renders "4vc/8192MB".
func (r Resource) String() string { return fmt.Sprintf("%dvc/%dMB", r.VCores, r.MemoryMB) }

// TaskSpec is one unit of application work: a container of the given size
// held for the given virtual duration.
type TaskSpec struct {
	Resource Resource
	Duration time.Duration
}

// AppSpec describes an application to submit.
type AppSpec struct {
	Name  string
	User  string
	Tasks []TaskSpec
	// AMResource is the master container held for the app's lifetime
	// (default 1 vcore / 512 MB).
	AMResource Resource
}

// AppState is an application's lifecycle state.
type AppState int

// Application states.
const (
	AppPending AppState = iota
	AppRunning
	AppFinished
)

func (s AppState) String() string {
	switch s {
	case AppPending:
		return "PENDING"
	case AppRunning:
		return "RUNNING"
	default:
		return "FINISHED"
	}
}

// Application is a submitted app's live state.
type Application struct {
	ID   int
	Spec AppSpec

	State       AppState
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time

	amNode        cluster.NodeID
	nextTask      int
	runningTasks  int
	finishedTasks int
}

// WaitTime returns how long the app waited for its first container.
func (a *Application) WaitTime() time.Duration { return a.StartedAt - a.SubmittedAt }

// Makespan returns submission-to-finish time.
func (a *Application) Makespan() time.Duration { return a.FinishedAt - a.SubmittedAt }

// Scheduler picks which pending app gets the next free container.
type Scheduler interface {
	Name() string
	// Pick returns the index into apps of the next app to serve, or -1.
	// Every candidate has at least one unscheduled task.
	Pick(apps []*Application) int
}

// FIFOScheduler serves the oldest app until it is fully scheduled — the
// behaviour that let one student's job monopolise the paper's shared
// cluster.
type FIFOScheduler struct{}

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// Pick implements Scheduler.
func (FIFOScheduler) Pick(apps []*Application) int {
	best := -1
	for i, a := range apps {
		if best == -1 || a.SubmittedAt < apps[best].SubmittedAt ||
			(a.SubmittedAt == apps[best].SubmittedAt && a.ID < apps[best].ID) {
			best = i
		}
	}
	return best
}

// FairScheduler gives the next container to the app currently holding the
// fewest, breaking ties by submission time — instantaneous fair sharing.
type FairScheduler struct{}

// Name implements Scheduler.
func (FairScheduler) Name() string { return "fair" }

// Pick implements Scheduler.
func (FairScheduler) Pick(apps []*Application) int {
	best := -1
	for i, a := range apps {
		if best == -1 {
			best = i
			continue
		}
		b := apps[best]
		if a.runningTasks < b.runningTasks ||
			(a.runningTasks == b.runningTasks && a.SubmittedAt < b.SubmittedAt) ||
			(a.runningTasks == b.runningTasks && a.SubmittedAt == b.SubmittedAt && a.ID < b.ID) {
			best = i
		}
	}
	return best
}

// nodeManager tracks one node's container capacity.
type nodeManager struct {
	id       cluster.NodeID
	capacity Resource
	used     Resource
}

func (nm *nodeManager) free() Resource { return nm.capacity.minus(nm.used) }

// ResourceManager owns the cluster's resources and runs the scheduler.
type ResourceManager struct {
	eng   *sim.Engine
	sched Scheduler

	nodes []*nodeManager
	apps  []*Application
	next  int

	// ContainersLaunched counts all container starts (AM + tasks).
	ContainersLaunched int
}

// NewResourceManager builds an RM over the topology; each node's capacity
// derives from its cores and RAM.
func NewResourceManager(eng *sim.Engine, topo *cluster.Topology, sched Scheduler) *ResourceManager {
	if sched == nil {
		sched = FIFOScheduler{}
	}
	rm := &ResourceManager{eng: eng, sched: sched}
	for _, n := range topo.Nodes() {
		rm.nodes = append(rm.nodes, &nodeManager{
			id:       n.ID,
			capacity: Resource{VCores: n.Cores, MemoryMB: n.RAMBytes >> 20},
		})
	}
	return rm
}

// ClusterCapacity returns the summed node capacity.
func (rm *ResourceManager) ClusterCapacity() Resource {
	var total Resource
	for _, nm := range rm.nodes {
		total = total.plus(nm.capacity)
	}
	return total
}

// Utilization returns the fraction of vcores currently allocated.
func (rm *ResourceManager) Utilization() float64 {
	var used, cap int
	for _, nm := range rm.nodes {
		used += nm.used.VCores
		cap += nm.capacity.VCores
	}
	if cap == 0 {
		return 0
	}
	return float64(used) / float64(cap)
}

// Submit registers an application; its AM container starts as soon as
// capacity allows.
func (rm *ResourceManager) Submit(spec AppSpec) (*Application, error) {
	if len(spec.Tasks) == 0 {
		return nil, errors.New("yarn: application has no tasks")
	}
	if spec.AMResource == (Resource{}) {
		spec.AMResource = Resource{VCores: 1, MemoryMB: 512}
	}
	cap := rm.ClusterCapacity()
	if !spec.AMResource.Fits(cap) {
		return nil, fmt.Errorf("yarn: AM container %v exceeds cluster capacity %v", spec.AMResource, cap)
	}
	for i, tk := range spec.Tasks {
		if !tk.Resource.Fits(rm.largestNode()) {
			return nil, fmt.Errorf("yarn: task %d container %v exceeds largest node", i, tk.Resource)
		}
	}
	rm.next++
	app := &Application{ID: rm.next, Spec: spec, SubmittedAt: rm.eng.Now()}
	rm.apps = append(rm.apps, app)
	rm.schedule()
	return app, nil
}

func (rm *ResourceManager) largestNode() Resource {
	var max Resource
	for _, nm := range rm.nodes {
		if nm.capacity.VCores > max.VCores {
			max.VCores = nm.capacity.VCores
		}
		if nm.capacity.MemoryMB > max.MemoryMB {
			max.MemoryMB = nm.capacity.MemoryMB
		}
	}
	return max
}

// allocate finds a node with room for r (most-free-first for spreading).
func (rm *ResourceManager) allocate(r Resource) *nodeManager {
	var best *nodeManager
	for _, nm := range rm.nodes {
		if !r.Fits(nm.free()) {
			continue
		}
		if best == nil || nm.free().VCores > best.free().VCores ||
			(nm.free().VCores == best.free().VCores && nm.id < best.id) {
			best = nm
		}
	}
	return best
}

// schedule drives all state transitions: AM launches for pending apps in
// submit order, then task containers via the pluggable scheduler.
func (rm *ResourceManager) schedule() {
	// Launch ApplicationMasters (FIFO regardless of task scheduler, as in
	// YARN where the AM itself is a scheduled container).
	pending := append([]*Application(nil), rm.apps...)
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, app := range pending {
		if app.State != AppPending {
			continue
		}
		nm := rm.allocate(app.Spec.AMResource)
		if nm == nil {
			continue
		}
		nm.used = nm.used.plus(app.Spec.AMResource)
		app.amNode = nm.id
		app.State = AppRunning
		app.StartedAt = rm.eng.Now()
		rm.ContainersLaunched++
	}
	// Task containers.
	for {
		var candidates []*Application
		for _, app := range rm.apps {
			if app.State == AppRunning && app.nextTask < len(app.Spec.Tasks) {
				candidates = append(candidates, app)
			}
		}
		if len(candidates) == 0 {
			return
		}
		idx := rm.sched.Pick(candidates)
		if idx < 0 || idx >= len(candidates) {
			return
		}
		app := candidates[idx]
		task := app.Spec.Tasks[app.nextTask]
		nm := rm.allocate(task.Resource)
		if nm == nil {
			// No room for this app's next container; try to serve another
			// app with a smaller request before giving up entirely.
			served := false
			for _, other := range candidates {
				if other == app {
					continue
				}
				t2 := other.Spec.Tasks[other.nextTask]
				if nm2 := rm.allocate(t2.Resource); nm2 != nil {
					rm.launchTask(other, t2, nm2)
					served = true
					break
				}
			}
			if !served {
				return
			}
			continue
		}
		rm.launchTask(app, task, nm)
	}
}

func (rm *ResourceManager) launchTask(app *Application, task TaskSpec, nm *nodeManager) {
	app.nextTask++
	app.runningTasks++
	nm.used = nm.used.plus(task.Resource)
	rm.ContainersLaunched++
	rm.eng.After(task.Duration, func() {
		nm.used = nm.used.minus(task.Resource)
		app.runningTasks--
		app.finishedTasks++
		if app.finishedTasks == len(app.Spec.Tasks) {
			// Release the AM and finish.
			for _, n := range rm.nodes {
				if n.id == app.amNode {
					n.used = n.used.minus(app.Spec.AMResource)
				}
			}
			app.State = AppFinished
			app.FinishedAt = rm.eng.Now()
		}
		rm.schedule()
	})
}

// Apps returns all applications in submission order.
func (rm *ResourceManager) Apps() []*Application {
	out := append([]*Application(nil), rm.apps...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllFinished reports whether every submitted app reached AppFinished.
func (rm *ResourceManager) AllFinished() bool {
	for _, a := range rm.apps {
		if a.State != AppFinished {
			return false
		}
	}
	return true
}

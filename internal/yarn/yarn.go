// Package yarn implements the resource-management layer the paper's
// future work points at ("recent developments ... have moved Hadoop
// beyond MapReduce's limitations in order to support additional
// capabilities such as cluster resource manager [YARN]"): a
// ResourceManager that owns cluster capacity, NodeManagers that host
// containers, applications that negotiate containers for their work, and
// pluggable scheduling policies.
//
// Two generations coexist, mirroring Hadoop's own history:
//
//   - The legacy path (NewResourceManager with a FIFO or fair Scheduler)
//     schedules whole task lists app-greedily — the single-queue world
//     whose failure mode is the paper's Fall 2012 deadline queue.
//   - The capacity path (NewCapacityResourceManager) is a real
//     multi-tenant scheduler: hierarchical capacity queues with user
//     limits (queue.go), container-level allocation driven by AppMaster
//     callbacks (this file), deterministic preemption of over-allocated
//     queues (preempt.go), and an elastic autoscaler over the node pool
//     (autoscale.go). Every decision lands in a replayable scheduler
//     event log (events.go) keyed on the sim clock.
//
// It runs on the same deterministic sim engine as the rest of the stack,
// which makes the multi-tenancy question behind the whole paper
// measurable: what happens when 35 students — or 350 — share one cluster?
package yarn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Resource is a container's size: virtual cores and memory.
type Resource struct {
	VCores   int
	MemoryMB int64
}

// Fits reports whether r fits within free.
func (r Resource) Fits(free Resource) bool {
	return r.VCores <= free.VCores && r.MemoryMB <= free.MemoryMB
}

func (r Resource) plus(o Resource) Resource {
	return Resource{VCores: r.VCores + o.VCores, MemoryMB: r.MemoryMB + o.MemoryMB}
}

func (r Resource) minus(o Resource) Resource {
	return Resource{VCores: r.VCores - o.VCores, MemoryMB: r.MemoryMB - o.MemoryMB}
}

// String renders "4vc/8192MB".
func (r Resource) String() string { return fmt.Sprintf("%dvc/%dMB", r.VCores, r.MemoryMB) }

// TaskSpec is one unit of application work: a container of the given size
// held for the given virtual duration.
type TaskSpec struct {
	Resource Resource
	Duration time.Duration
}

// AppSpec describes an application to submit.
type AppSpec struct {
	Name string
	User string
	// Queue names the leaf capacity queue (leaf segment or full dotted
	// path). Ignored by the legacy single-queue path; empty means the
	// "default" leaf in capacity mode.
	Queue string
	Tasks []TaskSpec
	// AMResource is the master container held for the app's lifetime
	// (default 1 vcore / 512 MB).
	AMResource Resource
}

// AppState is an application's lifecycle state.
type AppState int

// Application states.
const (
	AppPending AppState = iota
	AppRunning
	AppFinished
)

func (s AppState) String() string {
	switch s {
	case AppPending:
		return "PENDING"
	case AppRunning:
		return "RUNNING"
	default:
		return "FINISHED"
	}
}

// containerState tracks a container through its lifetime.
type containerState int

const (
	containerLive containerState = iota
	containerReleased
	containerPreempted
)

// Container is one granted resource lease on a node. The RM creates it
// at allocation, the owning application works inside it, and it ends by
// release (work done) or preemption (the RM took it back).
type Container struct {
	ID       int
	App      *Application
	Node     cluster.NodeID
	Resource Resource
	// AM marks the application-master container; AM containers are never
	// preempted and live until the app finishes.
	AM bool
	// Tag echoes the ContainerRequest's tag, so multiplexing AppMasters
	// (the MapReduce JobTracker) know what they asked this container for.
	Tag       string
	StartedAt sim.Time

	// ctx is the container's node in its app's trace; its span records at
	// the terminal transition (release or preemption).
	ctx obs.Ctx

	state containerState
}

// Preempted reports whether the RM killed this container to rebalance
// capacity.
func (c *Container) Preempted() bool { return c.state == containerPreempted }

// Released reports whether the container has ended (release or preempt).
func (c *Container) Released() bool { return c.state != containerLive }

func (c *Container) idStr() string { return fmt.Sprintf("c%06d", c.ID) }

// ContainerRequest asks the capacity scheduler for one container.
type ContainerRequest struct {
	Resource Resource
	// Hosts is a locality preference: nodes whose hostname matches are
	// tried first. Best effort, never a hard constraint.
	Hosts []string
	// Tag is opaque to the RM and echoed on the granted Container.
	Tag string
}

// AppMaster receives the capacity scheduler's decisions for one app.
// Implementations must be deterministic: callbacks arrive inside the
// RM's scheduling pass on the sim thread.
type AppMaster interface {
	// OnAllocated hands the app a newly granted container.
	OnAllocated(c *Container)
	// OnPreempted tells the app the RM killed the container; whatever
	// ran inside must be re-attempted (re-request a container).
	OnPreempted(c *Container)
}

// Application is a submitted app's live state.
type Application struct {
	ID   int
	Spec AppSpec
	// Queue is the resolved leaf queue path ("" in legacy mode).
	Queue string
	// User is the submitting principal (default "nobody").
	User string

	State       AppState
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time

	// Preemptions counts containers this app lost to preemption.
	Preemptions int

	// ctx roots the app's trace (capacity mode; invalid when unsampled
	// or in legacy mode).
	ctx obs.Ctx

	// --- legacy-path fields ---
	amNode        cluster.NodeID
	nextTask      int
	runningTasks  int
	finishedTasks int

	// --- capacity-path fields ---
	master      AppMaster
	queue       *leafQueue
	amContainer *Container
	containers  []*Container // live task containers, allocation order
	requests    []ContainerRequest
}

// WaitTime returns how long the app waited for its first container.
func (a *Application) WaitTime() time.Duration { return a.StartedAt - a.SubmittedAt }

// Makespan returns submission-to-finish time.
func (a *Application) Makespan() time.Duration { return a.FinishedAt - a.SubmittedAt }

// Containers returns the app's live task containers in allocation order.
func (a *Application) Containers() []*Container {
	return append([]*Container(nil), a.containers...)
}

// PendingRequests returns the number of outstanding container requests.
func (a *Application) PendingRequests() int { return len(a.requests) }

func (a *Application) removeContainer(c *Container) {
	for i, x := range a.containers {
		if x == c {
			a.containers = append(a.containers[:i], a.containers[i+1:]...)
			return
		}
	}
}

// Scheduler picks which pending app gets the next free container (legacy
// single-queue path).
type Scheduler interface {
	Name() string
	// Pick returns the index into apps of the next app to serve, or -1.
	// Every candidate has at least one unscheduled task.
	Pick(apps []*Application) int
}

// FIFOScheduler serves the oldest app until it is fully scheduled — the
// behaviour that let one student's job monopolise the paper's shared
// cluster.
type FIFOScheduler struct{}

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// Pick implements Scheduler.
func (FIFOScheduler) Pick(apps []*Application) int {
	best := -1
	for i, a := range apps {
		if best == -1 || a.SubmittedAt < apps[best].SubmittedAt ||
			(a.SubmittedAt == apps[best].SubmittedAt && a.ID < apps[best].ID) {
			best = i
		}
	}
	return best
}

// FairScheduler gives the next container to the app currently holding the
// fewest, breaking ties by submission time — instantaneous fair sharing.
type FairScheduler struct{}

// Name implements Scheduler.
func (FairScheduler) Name() string { return "fair" }

// Pick implements Scheduler.
func (FairScheduler) Pick(apps []*Application) int {
	best := -1
	for i, a := range apps {
		if best == -1 {
			best = i
			continue
		}
		b := apps[best]
		if a.runningTasks < b.runningTasks ||
			(a.runningTasks == b.runningTasks && a.SubmittedAt < b.SubmittedAt) ||
			(a.runningTasks == b.runningTasks && a.SubmittedAt == b.SubmittedAt && a.ID < b.ID) {
			best = i
		}
	}
	return best
}

// nodeManager tracks one node's container capacity.
type nodeManager struct {
	id       cluster.NodeID
	hostname string
	capacity Resource
	used     Resource
	// active nodes accept allocations; the autoscaler parks the rest.
	active bool
	// containers live on this node, allocation order (capacity mode).
	containers []*Container
}

func (nm *nodeManager) free() Resource { return nm.capacity.minus(nm.used) }

func (nm *nodeManager) removeContainer(c *Container) {
	for i, x := range nm.containers {
		if x == c {
			nm.containers = append(nm.containers[:i], nm.containers[i+1:]...)
			return
		}
	}
}

// CapacityOptions configures a capacity-mode ResourceManager.
type CapacityOptions struct {
	// Queues is the hierarchical queue tree (DefaultQueues() when zero).
	Queues QueueConfig
	// Preemption enables and tunes the preemption monitor.
	Preemption PreemptionConfig
	// Autoscale enables and tunes the elastic node pool.
	Autoscale AutoscaleConfig
	// Obs receives the scheduler's metrics (optional).
	Obs *obs.Registry
}

// ResourceManager owns the cluster's resources and runs the scheduler.
type ResourceManager struct {
	eng   *sim.Engine
	sched Scheduler

	nodes []*nodeManager
	apps  []*Application
	next  int

	// ContainersLaunched counts all container starts (AM + tasks).
	ContainersLaunched int

	// --- capacity mode (nil leaves == legacy mode) ---
	leaves       []*leafQueue
	preemptCfg   PreemptionConfig
	autoscaleCfg AutoscaleConfig
	log          *history.Log
	m            rmMetrics
	containerSeq int
	inPass       bool
	passDirty    bool
	preemptions  int
	appsFinished int

	// autoscaler accounting
	lastScaleUp     sim.Time
	lastScaleDown   sim.Time
	lastAccrue      sim.Time
	nodeNanoseconds float64
}

// NewResourceManager builds a legacy single-queue RM over the topology;
// each node's capacity derives from its cores and RAM.
func NewResourceManager(eng *sim.Engine, topo *cluster.Topology, sched Scheduler) *ResourceManager {
	if sched == nil {
		sched = FIFOScheduler{}
	}
	rm := &ResourceManager{eng: eng, sched: sched}
	rm.initNodes(topo, topo.Len())
	return rm
}

// NewCapacityResourceManager builds a multi-tenant RM: hierarchical
// capacity queues, container-level allocation, preemption and (when
// enabled) an elastic node pool. The topology is the *maximum* pool; with
// autoscaling enabled only Autoscale.MinNodes start active.
func NewCapacityResourceManager(eng *sim.Engine, topo *cluster.Topology, opts CapacityOptions) (*ResourceManager, error) {
	queues := opts.Queues
	if queues.Name == "" && len(queues.Children) == 0 {
		queues = DefaultQueues()
	}
	leaves, err := buildLeaves(queues)
	if err != nil {
		return nil, err
	}
	rm := &ResourceManager{
		eng:          eng,
		leaves:       leaves,
		preemptCfg:   opts.Preemption.withDefaults(),
		autoscaleCfg: opts.Autoscale.withDefaults(topo.Len()),
		m:            newRMMetrics(opts.Obs),
	}
	rm.log = history.NewLog(rm.m.events)
	initial := topo.Len()
	if rm.autoscaleCfg.Enabled {
		initial = rm.autoscaleCfg.MinNodes
	}
	rm.initNodes(topo, initial)
	rm.logInit()
	if rm.preemptCfg.Enabled {
		eng.Every(rm.preemptCfg.Interval, rm.runPreemption)
	}
	if rm.autoscaleCfg.Enabled {
		eng.Every(rm.autoscaleCfg.Interval, rm.runAutoscale)
	}
	return rm, nil
}

func (rm *ResourceManager) initNodes(topo *cluster.Topology, active int) {
	for i, n := range topo.Nodes() {
		rm.nodes = append(rm.nodes, &nodeManager{
			id:       n.ID,
			hostname: n.Hostname,
			capacity: Resource{VCores: n.Cores, MemoryMB: n.RAMBytes >> 20},
			active:   i < active,
		})
	}
	rm.m.activeNodes.Set(int64(active))
}

// capacityMode reports whether this RM runs the capacity scheduler.
func (rm *ResourceManager) capacityMode() bool { return rm.leaves != nil }

// ClusterCapacity returns the summed capacity of the active node pool.
func (rm *ResourceManager) ClusterCapacity() Resource {
	var total Resource
	for _, nm := range rm.nodes {
		if nm.active {
			total = total.plus(nm.capacity)
		}
	}
	return total
}

// ActiveNodes returns the size of the active node pool.
func (rm *ResourceManager) ActiveNodes() int {
	n := 0
	for _, nm := range rm.nodes {
		if nm.active {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of active vcores currently allocated.
func (rm *ResourceManager) Utilization() float64 {
	var used, capTotal int
	for _, nm := range rm.nodes {
		if !nm.active {
			continue
		}
		used += nm.used.VCores
		capTotal += nm.capacity.VCores
	}
	if capTotal == 0 {
		return 0
	}
	return float64(used) / float64(capTotal)
}

// Preemptions returns the number of containers killed by preemption.
func (rm *ResourceManager) Preemptions() int { return rm.preemptions }

// EventLog returns the scheduler's replayable event log (capacity mode;
// nil-safe in legacy mode: a nil *Log drops everything).
func (rm *ResourceManager) EventLog() *history.Log { return rm.log }

// Submit registers an application. In legacy mode its AM starts as soon
// as capacity allows and tasks flow through the pluggable Scheduler; in
// capacity mode the built-in task driver requests one container per task
// through the capacity queues.
func (rm *ResourceManager) Submit(spec AppSpec) (*Application, error) {
	if len(spec.Tasks) == 0 {
		return nil, errors.New("yarn: application has no tasks")
	}
	if rm.capacityMode() {
		app, err := rm.SubmitManaged(spec, nil)
		if err != nil {
			return nil, err
		}
		tm := &taskMaster{rm: rm, app: app}
		app.master = tm
		tm.start()
		return app, nil
	}
	if err := rm.validateSpec(&spec); err != nil {
		return nil, err
	}
	rm.next++
	app := &Application{ID: rm.next, Spec: spec, User: spec.User, SubmittedAt: rm.eng.Now()}
	rm.apps = append(rm.apps, app)
	rm.schedule()
	return app, nil
}

// SubmitManaged registers an application driven by an external AppMaster
// (capacity mode only). The RM launches the AM container through the
// app's queue; the master then negotiates task containers with Request.
func (rm *ResourceManager) SubmitManaged(spec AppSpec, master AppMaster) (*Application, error) {
	if !rm.capacityMode() {
		return nil, errors.New("yarn: SubmitManaged requires a capacity ResourceManager")
	}
	if err := rm.validateSpec(&spec); err != nil {
		return nil, err
	}
	q, err := findLeaf(rm.leaves, spec.Queue)
	if err != nil {
		return nil, err
	}
	if spec.User == "" {
		spec.User = "nobody"
	}
	rm.next++
	app := &Application{
		ID:          rm.next,
		Spec:        spec,
		Queue:       q.path,
		User:        spec.User,
		SubmittedAt: rm.eng.Now(),
		master:      master,
		queue:       q,
	}
	app.ctx = rm.m.reg.NewTrace(time.Duration(app.SubmittedAt))
	rm.apps = append(rm.apps, app)
	q.apps = append(q.apps, app)
	rm.m.appsSubmitted.Inc()
	rm.event(EvAppSubmit, map[string]string{
		"app": appID(app), "name": spec.Name, "queue": q.path, "user": spec.User,
		"tasks": fmt.Sprint(len(spec.Tasks)),
	})
	rm.kick()
	return app, nil
}

func (rm *ResourceManager) validateSpec(spec *AppSpec) error {
	if spec.AMResource == (Resource{}) {
		spec.AMResource = Resource{VCores: 1, MemoryMB: 512}
	}
	capTotal := rm.poolCapacity()
	if !spec.AMResource.Fits(capTotal) {
		return fmt.Errorf("yarn: AM container %v exceeds cluster capacity %v", spec.AMResource, capTotal)
	}
	for i, tk := range spec.Tasks {
		if !tk.Resource.Fits(rm.largestNode()) {
			return fmt.Errorf("yarn: task %d container %v exceeds largest node", i, tk.Resource)
		}
	}
	return nil
}

// poolCapacity sums the whole pool (active or not): admission control is
// against what the cluster *could* grow to.
func (rm *ResourceManager) poolCapacity() Resource {
	var total Resource
	for _, nm := range rm.nodes {
		total = total.plus(nm.capacity)
	}
	return total
}

func (rm *ResourceManager) largestNode() Resource {
	var max Resource
	for _, nm := range rm.nodes {
		if nm.capacity.VCores > max.VCores {
			max.VCores = nm.capacity.VCores
		}
		if nm.capacity.MemoryMB > max.MemoryMB {
			max.MemoryMB = nm.capacity.MemoryMB
		}
	}
	return max
}

// Request asks for one more container for app (capacity mode). The
// request queues FIFO per app and is served subject to the app's queue
// capacity and user limit.
func (rm *ResourceManager) Request(app *Application, req ContainerRequest) {
	if !rm.capacityMode() || app.State == AppFinished {
		return
	}
	if req.Resource == (Resource{}) {
		req.Resource = Resource{VCores: 1, MemoryMB: 1024}
	}
	app.requests = append(app.requests, req)
	rm.kick()
}

// CancelRequests removes up to n outstanding requests with the given tag
// from the back of app's request queue, returning how many were removed.
// AppMasters use it to withdraw demand that completed another way.
func (rm *ResourceManager) CancelRequests(app *Application, tag string, n int) int {
	removed := 0
	for i := len(app.requests) - 1; i >= 0 && removed < n; i-- {
		if app.requests[i].Tag == tag {
			app.requests = append(app.requests[:i], app.requests[i+1:]...)
			removed++
		}
	}
	return removed
}

// containerSpan records a container's allocation-to-terminal span under
// its app's trace, with the terminal reason.
func (rm *ResourceManager) containerSpan(c *Container, reason string) {
	attrs := map[string]string{
		"container": c.idStr(),
		"app":       appID(c.App),
		"node":      fmt.Sprint(int(c.Node)),
		"reason":    reason,
	}
	if c.AM {
		attrs["am"] = "1"
	}
	rm.m.reg.SpanCtx(c.ctx, SpanContainer, time.Duration(c.StartedAt), time.Duration(rm.eng.Now()), attrs)
}

// Release returns a task container to the pool (capacity mode).
func (rm *ResourceManager) Release(c *Container, reason string) {
	if c == nil || c.state != containerLive || c.AM {
		return
	}
	c.state = containerReleased
	rm.freeContainer(c)
	rm.containerSpan(c, reason)
	rm.m.containersReleased.Inc()
	rm.event(EvRelease, map[string]string{
		"container": c.idStr(), "app": appID(c.App), "queue": c.App.Queue,
		"node": fmt.Sprint(int(c.Node)), "reason": reason,
	})
	rm.kick()
}

// freeContainer removes a container from node, app and queue accounting.
func (rm *ResourceManager) freeContainer(c *Container) {
	nm := rm.nodes[c.Node]
	nm.used = nm.used.minus(c.Resource)
	nm.removeContainer(c)
	c.App.removeContainer(c)
	c.App.queue.uncharge(c.App.User, c.Resource)
}

// FinishApp marks a managed app complete: leftover containers and the AM
// are released and the app leaves its queue.
func (rm *ResourceManager) FinishApp(app *Application) {
	if !rm.capacityMode() || app.State == AppFinished {
		return
	}
	for _, c := range append([]*Container(nil), app.containers...) {
		if c.state == containerLive {
			c.state = containerReleased
			rm.freeContainer(c)
			rm.containerSpan(c, "app_finish")
			rm.m.containersReleased.Inc()
			rm.event(EvRelease, map[string]string{
				"container": c.idStr(), "app": appID(app), "queue": app.Queue,
				"node": fmt.Sprint(int(c.Node)), "reason": "app_finish",
			})
		}
	}
	if am := app.amContainer; am != nil && am.state == containerLive {
		am.state = containerReleased
		nm := rm.nodes[am.Node]
		nm.used = nm.used.minus(am.Resource)
		nm.removeContainer(am)
		app.queue.uncharge(app.User, am.Resource)
		rm.containerSpan(am, "app_finish")
		rm.m.containersReleased.Inc()
		rm.event(EvRelease, map[string]string{
			"container": am.idStr(), "app": appID(app), "queue": app.Queue,
			"node": fmt.Sprint(int(am.Node)), "reason": "app_finish",
		})
	}
	app.requests = nil
	app.State = AppFinished
	app.FinishedAt = rm.eng.Now()
	app.queue.removeApp(app)
	rm.appsFinished++
	rm.m.appsFinished.Inc()
	rm.m.reg.SpanCtx(app.ctx, SpanApp, time.Duration(app.SubmittedAt), time.Duration(app.FinishedAt), map[string]string{
		"app":   appID(app),
		"queue": app.Queue,
		"user":  app.User,
	})
	rm.event(EvAppFinish, map[string]string{
		"app": appID(app), "queue": app.Queue,
		"wait_ns":     fmt.Sprint(int64(app.WaitTime())),
		"makespan_ns": fmt.Sprint(int64(app.Makespan())),
	})
	rm.kick()
}

// SetNodeActive changes one node's pool membership at runtime — the hook
// node-level faults use (a dead TaskTracker drains its node). Deactivating
// a node preempts every container on it; reactivating returns it to the
// allocatable pool.
func (rm *ResourceManager) SetNodeActive(id cluster.NodeID, active bool) {
	if int(id) < 0 || int(id) >= len(rm.nodes) {
		return
	}
	nm := rm.nodes[id]
	if nm.active == active {
		return
	}
	rm.accrueNodeTime()
	nm.active = active
	if active {
		rm.event(EvNodeUp, map[string]string{
			"node": fmt.Sprint(int(id)),
			"vc":   fmt.Sprint(nm.capacity.VCores), "mb": fmt.Sprint(nm.capacity.MemoryMB),
			"reason": "admin",
		})
	} else {
		// Drain: every container on the node dies and its work re-attempts
		// elsewhere. AM containers finish the app's admission over again.
		for _, c := range append([]*Container(nil), nm.containers...) {
			if c.state != containerLive {
				continue
			}
			if c.AM {
				app := c.App
				c.state = containerPreempted
				nm.used = nm.used.minus(c.Resource)
				nm.removeContainer(c)
				app.queue.uncharge(app.User, c.Resource)
				app.amContainer = nil
				app.State = AppPending
				rm.containerSpan(c, "node_drain")
				rm.event(EvRelease, map[string]string{
					"container": c.idStr(), "app": appID(app), "queue": app.Queue,
					"node": fmt.Sprint(int(nm.id)), "reason": "node_drain",
				})
				continue
			}
			rm.preemptContainer(c, "")
		}
		rm.event(EvNodeDown, map[string]string{
			"node": fmt.Sprint(int(id)), "reason": "admin",
		})
	}
	rm.m.activeNodes.Set(int64(rm.ActiveNodes()))
	rm.kick()
}

// Apps returns all applications in submission order.
func (rm *ResourceManager) Apps() []*Application {
	out := append([]*Application(nil), rm.apps...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllFinished reports whether every submitted app reached AppFinished.
func (rm *ResourceManager) AllFinished() bool {
	for _, a := range rm.apps {
		if a.State != AppFinished {
			return false
		}
	}
	return true
}

func appID(a *Application) string { return fmt.Sprintf("app%05d", a.ID) }

// --- legacy single-queue scheduling (unchanged semantics) ---

// allocate finds an active node with room for r (most-free-first for
// spreading).
func (rm *ResourceManager) allocate(r Resource) *nodeManager {
	var best *nodeManager
	for _, nm := range rm.nodes {
		if !nm.active || !r.Fits(nm.free()) {
			continue
		}
		if best == nil || nm.free().VCores > best.free().VCores ||
			(nm.free().VCores == best.free().VCores && nm.id < best.id) {
			best = nm
		}
	}
	return best
}

// schedule drives all legacy-path state transitions: AM launches for
// pending apps in submit order, then task containers via the pluggable
// scheduler.
func (rm *ResourceManager) schedule() {
	if rm.capacityMode() {
		rm.kick()
		return
	}
	// Launch ApplicationMasters (FIFO regardless of task scheduler, as in
	// YARN where the AM itself is a scheduled container).
	pending := append([]*Application(nil), rm.apps...)
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, app := range pending {
		if app.State != AppPending {
			continue
		}
		nm := rm.allocate(app.Spec.AMResource)
		if nm == nil {
			continue
		}
		nm.used = nm.used.plus(app.Spec.AMResource)
		app.amNode = nm.id
		app.State = AppRunning
		app.StartedAt = rm.eng.Now()
		rm.ContainersLaunched++
	}
	// Task containers.
	for {
		var candidates []*Application
		for _, app := range rm.apps {
			if app.State == AppRunning && app.nextTask < len(app.Spec.Tasks) {
				candidates = append(candidates, app)
			}
		}
		if len(candidates) == 0 {
			return
		}
		idx := rm.sched.Pick(candidates)
		if idx < 0 || idx >= len(candidates) {
			return
		}
		app := candidates[idx]
		task := app.Spec.Tasks[app.nextTask]
		nm := rm.allocate(task.Resource)
		if nm == nil {
			// No room for this app's next container; try to serve another
			// app with a smaller request before giving up entirely.
			served := false
			for _, other := range candidates {
				if other == app {
					continue
				}
				t2 := other.Spec.Tasks[other.nextTask]
				if nm2 := rm.allocate(t2.Resource); nm2 != nil {
					rm.launchTask(other, t2, nm2)
					served = true
					break
				}
			}
			if !served {
				return
			}
			continue
		}
		rm.launchTask(app, task, nm)
	}
}

func (rm *ResourceManager) launchTask(app *Application, task TaskSpec, nm *nodeManager) {
	app.nextTask++
	app.runningTasks++
	nm.used = nm.used.plus(task.Resource)
	rm.ContainersLaunched++
	rm.eng.After(task.Duration, func() {
		nm.used = nm.used.minus(task.Resource)
		app.runningTasks--
		app.finishedTasks++
		if app.finishedTasks == len(app.Spec.Tasks) {
			// Release the AM and finish.
			for _, n := range rm.nodes {
				if n.id == app.amNode {
					n.used = n.used.minus(app.Spec.AMResource)
				}
			}
			app.State = AppFinished
			app.FinishedAt = rm.eng.Now()
		}
		rm.schedule()
	})
}

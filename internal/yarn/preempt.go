package yarn

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
)

// PreemptionConfig tunes the capacity scheduler's preemption monitor.
type PreemptionConfig struct {
	// Enabled turns the monitor on (off by default: pure capacity
	// scheduling, a starved queue waits for natural container churn).
	Enabled bool
	// Interval is how often the monitor scans for starved queues
	// (default 15s sim time).
	Interval time.Duration
	// MaxPerRound bounds containers killed per scan (default 8) so one
	// scan can't mass-evict a queue.
	MaxPerRound int
}

func (c PreemptionConfig) withDefaults() PreemptionConfig {
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.MaxPerRound <= 0 {
		c.MaxPerRound = 8
	}
	return c
}

// runPreemption is the periodic monitor: for each queue that is starved
// (has demand but sits under its vcore guarantee) while others run over
// theirs, build the cheapest node-local victim plan that frees room for
// the starved queue's head request, and kill those containers. Victim
// selection is deterministic: youngest container first (latest start,
// then highest id), never an AM, and never cutting a victim queue below
// its own guarantee — which is what makes back-to-back rounds converge
// instead of thrashing allocations back and forth.
func (rm *ResourceManager) runPreemption() {
	if rm.inPass {
		return
	}
	capNow := rm.ClusterCapacity()
	var starved []*leafQueue
	for _, q := range rm.leaves { // rm.leaves is path-sorted
		if q.used.VCores < q.guaranteed(capNow).VCores && rm.queueDemand(q) > 0 {
			starved = append(starved, q)
		}
	}
	if len(starved) == 0 {
		return
	}
	sort.SliceStable(starved, func(i, j int) bool {
		ri, rj := starved[i].usedRatio(capNow), starved[j].usedRatio(capNow)
		if ri != rj {
			return ri < rj
		}
		return starved[i].path < starved[j].path
	})
	budget := rm.preemptCfg.MaxPerRound
	// Latch the pass: victims' masters re-request from inside
	// OnPreempted, and those allocations must wait until the round is
	// done or they would race the queues we are rebalancing.
	rm.inPass = true
	for _, q := range starved {
		if budget <= 0 {
			break
		}
		req, ok := rm.headNeed(q)
		if !ok {
			continue
		}
		if rm.allocate(req) != nil {
			continue // a node already has room; scheduling will serve it
		}
		victims := rm.planVictims(q, req, capNow, budget)
		if victims == nil {
			continue
		}
		for _, v := range victims {
			rm.preemptContainer(v, q.path)
		}
		budget -= len(victims)
	}
	rm.inPass = false
	rm.kick()
}

// queueDemand sums the queue's unserved vcore demand: AM containers of
// pending apps plus outstanding requests of running ones.
func (rm *ResourceManager) queueDemand(q *leafQueue) int {
	demand := 0
	for _, app := range q.apps {
		if app.State == AppPending {
			demand += app.Spec.AMResource.VCores
			continue
		}
		for _, r := range app.requests {
			demand += r.Resource.VCores
		}
	}
	return demand
}

// headNeed returns the starved queue's first unserved container size in
// submission order.
func (rm *ResourceManager) headNeed(q *leafQueue) (Resource, bool) {
	for _, app := range q.apps {
		if app.State == AppPending {
			return app.Spec.AMResource, true
		}
		if len(app.requests) > 0 {
			return app.requests[0].Resource, true
		}
	}
	return Resource{}, false
}

// planVictims finds the cheapest single-node victim set that frees room
// for res: per node, take youngest eligible containers until the node
// fits the request; across nodes, prefer the fewest victims, then the
// lowest node id. Eligible victims are live non-AM containers whose
// queue stays at or above its guarantee after the kill. Returns nil when
// no node can be cleared within budget.
func (rm *ResourceManager) planVictims(starved *leafQueue, res Resource, capNow Resource, budget int) []*Container {
	var bestVictims []*Container
	bestNode := cluster.NodeID(-1)
	for _, nm := range rm.nodes {
		if !nm.active || !res.Fits(nm.capacity) {
			continue
		}
		need := res.minus(nm.free())
		cands := make([]*Container, 0, len(nm.containers))
		for _, c := range nm.containers {
			if c.state == containerLive && !c.AM && c.App.queue != starved {
				cands = append(cands, c)
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].StartedAt != cands[j].StartedAt {
				return cands[i].StartedAt > cands[j].StartedAt
			}
			return cands[i].ID > cands[j].ID
		})
		reduced := map[*leafQueue]int{} // vcores already planned away, per queue
		var victims []*Container
		freed := Resource{}
		for _, c := range cands {
			if freed.VCores >= need.VCores && freed.MemoryMB >= need.MemoryMB {
				break
			}
			vq := c.App.queue
			if vq.used.VCores-reduced[vq]-c.Resource.VCores < vq.guaranteed(capNow).VCores {
				continue // would cut the victim queue below its guarantee
			}
			victims = append(victims, c)
			reduced[vq] += c.Resource.VCores
			freed = freed.plus(c.Resource)
		}
		if freed.VCores < need.VCores || freed.MemoryMB < need.MemoryMB || len(victims) > budget {
			continue
		}
		if bestVictims == nil || len(victims) < len(bestVictims) ||
			(len(victims) == len(bestVictims) && nm.id < bestNode) {
			bestVictims, bestNode = victims, nm.id
		}
	}
	return bestVictims
}

// preemptContainer kills one container to rebalance capacity (forQueue
// names the starved beneficiary; empty means a node drain) and tells the
// owning master to re-attempt the work.
func (rm *ResourceManager) preemptContainer(c *Container, forQueue string) {
	if c.state != containerLive || c.AM {
		return
	}
	c.state = containerPreempted
	rm.freeContainer(c)
	rm.preemptions++
	c.App.Preemptions++
	if forQueue != "" {
		rm.containerSpan(c, "preempt")
	} else {
		rm.containerSpan(c, "node_drain")
	}
	rm.m.containersPreempted.Inc()
	attrs := map[string]string{
		"container": c.idStr(),
		"app":       appID(c.App),
		"queue":     c.App.Queue,
		"node":      fmt.Sprint(int(c.Node)),
	}
	if forQueue != "" {
		attrs["for_queue"] = forQueue
	} else {
		attrs["reason"] = "node_drain"
	}
	rm.event(EvPreempt, attrs)
	if c.App.master != nil {
		c.App.master.OnPreempted(c)
	}
}

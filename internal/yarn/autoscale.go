package yarn

import (
	"fmt"
	"time"
)

// AutoscaleConfig tunes the elastic node pool. The topology handed to
// NewCapacityResourceManager is the pool's *maximum*; with autoscaling
// enabled only MinNodes start active and the monitor grows/shrinks the
// active set from queue pressure — the sigmaos autoscale/besched shape
// on the sim clock, so every sizing decision replays exactly.
type AutoscaleConfig struct {
	// Enabled turns the monitor on; off means the whole pool is always
	// active (fixed-size cluster).
	Enabled bool
	// MinNodes is the floor the pool never shrinks below (default 1).
	MinNodes int
	// Interval is the monitor period (default 30s sim time).
	Interval time.Duration
	// Step bounds nodes added per scale-up tick (default 4). Scale-down
	// releases at most one node per tick regardless.
	Step int
	// ScaleDownIdle is the utilization threshold below which an idle
	// cluster sheds nodes (default 0.35).
	ScaleDownIdle float64
	// Cooldown is the quiet period required after any scaling action
	// before a scale-down (default 2m), damping oscillation.
	Cooldown time.Duration
}

func (c AutoscaleConfig) withDefaults(pool int) AutoscaleConfig {
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.MinNodes > pool {
		c.MinNodes = pool
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Step <= 0 {
		c.Step = 4
	}
	if c.ScaleDownIdle <= 0 {
		c.ScaleDownIdle = 0.35
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Minute
	}
	return c
}

// runAutoscale is the periodic monitor. Scale-up: when unserved vcore
// demand exceeds free capacity, activate the lowest-numbered parked
// nodes (up to Step) to cover the shortfall. Scale-down: when there is
// no demand at all, utilization sits under the idle threshold, and the
// cooldown has passed, park the highest-numbered node that holds zero
// containers — never one with live work.
func (rm *ResourceManager) runAutoscale() {
	cfg := rm.autoscaleCfg
	demand := rm.pendingDemand()
	freeVC := 0
	for _, nm := range rm.nodes {
		if nm.active {
			freeVC += nm.free().VCores
		}
	}
	now := rm.eng.Now()
	if demand > freeVC {
		shortfall := demand - freeVC
		added := 0
		for _, nm := range rm.nodes {
			if added >= cfg.Step || shortfall <= 0 {
				break
			}
			if nm.active {
				continue
			}
			rm.accrueNodeTime()
			nm.active = true
			added++
			shortfall -= nm.capacity.VCores
			rm.event(EvNodeUp, map[string]string{
				"node":   fmt.Sprint(int(nm.id)),
				"vc":     fmt.Sprint(nm.capacity.VCores),
				"mb":     fmt.Sprint(nm.capacity.MemoryMB),
				"reason": "scale_up",
			})
		}
		if added > 0 {
			rm.lastScaleUp = now
			rm.m.scaleUps.Add(int64(added))
			rm.m.activeNodes.Set(int64(rm.ActiveNodes()))
			rm.kick()
		}
		return
	}
	if demand > 0 || rm.Utilization() >= cfg.ScaleDownIdle {
		return
	}
	if now-rm.lastScaleUp < cfg.Cooldown || now-rm.lastScaleDown < cfg.Cooldown {
		return
	}
	for i := len(rm.nodes) - 1; i >= 0; i-- {
		nm := rm.nodes[i]
		if !nm.active || len(nm.containers) > 0 {
			continue
		}
		if rm.ActiveNodes() <= cfg.MinNodes {
			return
		}
		rm.accrueNodeTime()
		nm.active = false
		rm.lastScaleDown = now
		rm.m.scaleDowns.Inc()
		rm.m.activeNodes.Set(int64(rm.ActiveNodes()))
		rm.event(EvNodeDown, map[string]string{
			"node": fmt.Sprint(int(nm.id)), "reason": "scale_down",
		})
		return // at most one node per tick
	}
}

// pendingDemand sums unserved vcore demand across every queue.
func (rm *ResourceManager) pendingDemand() int {
	demand := 0
	for _, q := range rm.leaves {
		demand += rm.queueDemand(q)
	}
	return demand
}

// accrueNodeTime integrates active-node count over sim time; called at
// every pool transition so the integral is exact.
func (rm *ResourceManager) accrueNodeTime() {
	now := rm.eng.Now()
	rm.nodeNanoseconds += float64(rm.ActiveNodes()) * float64(now-rm.lastAccrue)
	rm.lastAccrue = now
}

// NodeHours returns the pool's accumulated node-hours — the cost metric
// autoscaling exists to shrink.
func (rm *ResourceManager) NodeHours() float64 {
	rm.accrueNodeTime()
	return rm.nodeNanoseconds / float64(time.Hour)
}

package yarn

import (
	"fmt"
	"strconv"

	"repro/internal/history"
)

// Scheduler event types. Every capacity-mode decision appends one of
// these to the RM's history.Log, making a run's scheduling behaviour a
// replayable, diffable artifact — and letting CheckLog re-derive the
// cluster state event by event to verify the scheduler's invariants
// from the outside.
const (
	// EvQueue declares one leaf queue at RM construction:
	// queue, guaranteed (fraction), max (fraction), ulf.
	EvQueue = "rm.queue"
	// EvNodeUp activates a node: node, vc, mb, reason (init | scale_up | admin).
	EvNodeUp = "rm.node_up"
	// EvNodeDown deactivates a node: node, reason (scale_down | admin).
	EvNodeDown = "rm.node_down"
	// EvAppSubmit admits an app: app, name, queue, user, tasks.
	EvAppSubmit = "rm.app_submit"
	// EvAMStart launches an app's master container: app, container, node.
	EvAMStart = "rm.am_start"
	// EvAlloc grants a container: container, app, queue, user, node, vc,
	// mb, plus am=1 for master containers or the request's tag.
	EvAlloc = "rm.alloc"
	// EvRelease returns a container: container, app, queue, node, reason.
	EvRelease = "rm.release"
	// EvPreempt kills a container to rebalance: container, app, queue,
	// node, and either for_queue (capacity preemption) or reason=node_drain.
	EvPreempt = "rm.preempt"
	// EvAppFinish completes an app: app, queue, wait_ns, makespan_ns.
	EvAppFinish = "rm.app_finish"
)

// event appends one scheduler event at the current sim time (nil-safe:
// legacy RMs have no log and drop everything).
func (rm *ResourceManager) event(typ string, attrs map[string]string) {
	rm.log.Append(rm.eng.Now(), typ, attrs)
}

// logInit records the queue tree and the initial node pool so CheckLog
// can replay from an empty state.
func (rm *ResourceManager) logInit() {
	for _, q := range rm.leaves {
		rm.event(EvQueue, map[string]string{
			"queue":      q.path,
			"guaranteed": strconv.FormatFloat(q.guaranteedFrac, 'g', -1, 64),
			"max":        strconv.FormatFloat(q.maxFrac, 'g', -1, 64),
			"ulf":        strconv.FormatFloat(q.ulf, 'g', -1, 64),
		})
	}
	for _, nm := range rm.nodes {
		if nm.active {
			rm.event(EvNodeUp, map[string]string{
				"node":   fmt.Sprint(int(nm.id)),
				"vc":     fmt.Sprint(nm.capacity.VCores),
				"mb":     fmt.Sprint(nm.capacity.MemoryMB),
				"reason": "init",
			})
		}
	}
}

// --- event-sourced invariant checker ---

type ckQueue struct {
	guarFrac float64
	maxFrac  float64
	usedVC   int
}

type ckNode struct {
	capVC  int
	capMB  int64
	usedVC int
	usedMB int64
	active bool
	nlive  int // live containers on the node
}

type ckContainer struct {
	app   string
	queue string
	node  string
	vc    int
	mb    int64
	am    bool
}

type ckState struct {
	queues     map[string]*ckQueue
	nodes      map[string]*ckNode
	containers map[string]ckContainer
	liveApps   map[string]bool
	appLive    map[string]int // live containers per app
	clusterVC  int
}

// CheckLog replays a capacity scheduler event log from empty state and
// verifies the scheduler's core invariants after every event:
//
//   - capacity conservation: every allocation lands on an active node
//     with room, so Σ allocated never exceeds the live cluster;
//   - queue ceilings: no allocation takes a queue past its max capacity
//     (computed against the live cluster, exactly as the scheduler does);
//   - justified preemption: a capacity preemption names a for_queue that
//     is under its guarantee while the victim's queue is over its own —
//     and the victim is never an AM container;
//   - safe scale-down: a node only leaves the pool with zero live
//     containers;
//   - clean finish: an app finishes with no containers left behind.
//
// The first violation is returned with its event index; nil means the
// whole log is invariant-clean.
func CheckLog(events []history.Event) error {
	st := &ckState{
		queues:     map[string]*ckQueue{},
		nodes:      map[string]*ckNode{},
		containers: map[string]ckContainer{},
		liveApps:   map[string]bool{},
		appLive:    map[string]int{},
	}
	for i, ev := range events {
		if err := st.apply(ev); err != nil {
			return fmt.Errorf("event %d (%s @%d): %w", i, ev.Type, int64(ev.TS), err)
		}
	}
	return nil
}

func (st *ckState) apply(ev history.Event) error {
	a := ev.Attrs
	switch ev.Type {
	case EvQueue:
		guar, err1 := strconv.ParseFloat(a["guaranteed"], 64)
		max, err2 := strconv.ParseFloat(a["max"], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad queue fractions %q/%q", a["guaranteed"], a["max"])
		}
		st.queues[a["queue"]] = &ckQueue{guarFrac: guar, maxFrac: max}

	case EvNodeUp:
		n := st.nodes[a["node"]]
		if n == nil {
			n = &ckNode{}
			st.nodes[a["node"]] = n
		}
		if n.active {
			return fmt.Errorf("node %s already active", a["node"])
		}
		vc, err1 := strconv.Atoi(a["vc"])
		mb, err2 := strconv.ParseInt(a["mb"], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad node capacity %q/%q", a["vc"], a["mb"])
		}
		n.capVC, n.capMB, n.active = vc, mb, true
		st.clusterVC += vc

	case EvNodeDown:
		n := st.nodes[a["node"]]
		if n == nil || !n.active {
			return fmt.Errorf("node %s not active", a["node"])
		}
		if n.nlive > 0 {
			return fmt.Errorf("node %s removed with %d live containers", a["node"], n.nlive)
		}
		n.active = false
		st.clusterVC -= n.capVC

	case EvAppSubmit:
		st.liveApps[a["app"]] = true

	case EvAlloc:
		n := st.nodes[a["node"]]
		if n == nil || !n.active {
			return fmt.Errorf("allocation on inactive node %s", a["node"])
		}
		q := st.queues[a["queue"]]
		if q == nil {
			return fmt.Errorf("allocation in unknown queue %q", a["queue"])
		}
		vc, err1 := strconv.Atoi(a["vc"])
		mb, err2 := strconv.ParseInt(a["mb"], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad container size %q/%q", a["vc"], a["mb"])
		}
		if _, dup := st.containers[a["container"]]; dup {
			return fmt.Errorf("container %s allocated twice", a["container"])
		}
		if n.usedVC+vc > n.capVC || n.usedMB+mb > n.capMB {
			return fmt.Errorf("node %s over capacity: %d+%dvc/%d, %d+%dMB/%d",
				a["node"], n.usedVC, vc, n.capVC, n.usedMB, mb, n.capMB)
		}
		maxVC := int(float64(st.clusterVC) * q.maxFrac)
		if q.usedVC+vc > maxVC {
			return fmt.Errorf("queue %s over max capacity: %d+%dvc > %dvc", a["queue"], q.usedVC, vc, maxVC)
		}
		n.usedVC += vc
		n.usedMB += mb
		n.nlive++
		q.usedVC += vc
		st.appLive[a["app"]]++
		st.containers[a["container"]] = ckContainer{
			app: a["app"], queue: a["queue"], node: a["node"],
			vc: vc, mb: mb, am: a["am"] == "1",
		}

	case EvRelease, EvPreempt:
		c, ok := st.containers[a["container"]]
		if !ok {
			return fmt.Errorf("container %s not live", a["container"])
		}
		if ev.Type == EvPreempt {
			if c.am {
				return fmt.Errorf("AM container %s preempted", a["container"])
			}
			if forQ := a["for_queue"]; forQ != "" {
				victim := st.queues[c.queue]
				target := st.queues[forQ]
				if target == nil {
					return fmt.Errorf("preempt for unknown queue %q", forQ)
				}
				if victimGuar := int(float64(st.clusterVC) * victim.guarFrac); victim.usedVC <= victimGuar {
					return fmt.Errorf("preempt victim queue %s not over guarantee (%dvc <= %dvc)",
						c.queue, victim.usedVC, victimGuar)
				}
				if targetGuar := int(float64(st.clusterVC) * target.guarFrac); target.usedVC >= targetGuar {
					return fmt.Errorf("preempt target queue %s not under guarantee (%dvc >= %dvc)",
						forQ, target.usedVC, targetGuar)
				}
			} else if a["reason"] != "node_drain" {
				return fmt.Errorf("preempt without for_queue or node_drain reason")
			}
		}
		n := st.nodes[c.node]
		n.usedVC -= c.vc
		n.usedMB -= c.mb
		n.nlive--
		st.queues[c.queue].usedVC -= c.vc
		st.appLive[c.app]--
		delete(st.containers, a["container"])

	case EvAppFinish:
		if !st.liveApps[a["app"]] {
			return fmt.Errorf("app %s finished without submit (or twice)", a["app"])
		}
		if n := st.appLive[a["app"]]; n > 0 {
			return fmt.Errorf("app %s finished with %d containers still live", a["app"], n)
		}
		delete(st.liveApps, a["app"])

	case EvAMStart:
		// lifecycle marker only; the AM's resources travel in its EvAlloc.
	}
	return nil
}

package yarn_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/yarn"
)

func newRM(t testing.TB, nodes int, sched yarn.Scheduler) (*sim.Engine, *yarn.ResourceManager) {
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	return eng, yarn.NewResourceManager(eng, topo, sched)
}

func uniformApp(name, user string, tasks int, perTask time.Duration) yarn.AppSpec {
	spec := yarn.AppSpec{Name: name, User: user}
	for i := 0; i < tasks; i++ {
		spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
			Resource: yarn.Resource{VCores: 2, MemoryMB: 4096},
			Duration: perTask,
		})
	}
	return spec
}

func TestSingleAppRunsToCompletion(t *testing.T) {
	eng, rm := newRM(t, 4, nil)
	app, err := rm.Submit(uniformApp("wordcount", "alice", 10, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if app.State != yarn.AppRunning {
		t.Fatalf("app state = %v, want RUNNING immediately on a free cluster", app.State)
	}
	eng.Run()
	if app.State != yarn.AppFinished {
		t.Fatalf("state = %v", app.State)
	}
	// 10 tasks x 2vc on 4 nodes x 16 cores: all run in one wave -> ~1 min.
	if app.Makespan() != time.Minute {
		t.Fatalf("makespan = %v, want 1m (single wave)", app.Makespan())
	}
	if rm.Utilization() != 0 {
		t.Fatalf("resources leaked: utilization %.2f after finish", rm.Utilization())
	}
}

func TestWavesWhenOversubscribed(t *testing.T) {
	eng, rm := newRM(t, 1, nil) // 16 cores: AM takes 1, 7 tasks of 2vc fit
	app, err := rm.Submit(uniformApp("big", "bob", 14, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if app.Makespan() != 2*time.Minute {
		t.Fatalf("makespan = %v, want 2m (two waves of 7)", app.Makespan())
	}
}

func TestRejectsImpossibleRequests(t *testing.T) {
	_, rm := newRM(t, 2, nil)
	if _, err := rm.Submit(yarn.AppSpec{Name: "empty", User: "x"}); err == nil {
		t.Fatal("empty app accepted")
	}
	huge := yarn.AppSpec{Name: "huge", User: "x", Tasks: []yarn.TaskSpec{{
		Resource: yarn.Resource{VCores: 999, MemoryMB: 1}, Duration: time.Second}}}
	if _, err := rm.Submit(huge); err == nil {
		t.Fatal("oversized container accepted")
	}
}

func TestFIFOStarvesSmallJobs(t *testing.T) {
	// The multi-tenancy lesson: a deadline-night cluster with one huge job
	// at the head of the queue. FIFO makes every later small job wait for
	// the giant; fair sharing interleaves them.
	run := func(sched yarn.Scheduler) (bigMakespan time.Duration, smallWait []time.Duration) {
		eng, rm := newRM(t, 8, sched)
		big, err := rm.Submit(uniformApp("thesis-job", "grad", 400, 2*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		var smalls []*yarn.Application
		for i := 0; i < 10; i++ {
			eng.Advance(10 * time.Second)
			app, err := rm.Submit(uniformApp(fmt.Sprintf("hw-%d", i), fmt.Sprintf("student%d", i), 4, time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			smalls = append(smalls, app)
		}
		eng.Run()
		if !rm.AllFinished() {
			t.Fatal("apps unfinished")
		}
		for _, s := range smalls {
			smallWait = append(smallWait, s.Makespan())
		}
		return big.Makespan(), smallWait
	}
	bigFIFO, smallFIFO := run(yarn.FIFOScheduler{})
	bigFair, smallFair := run(yarn.FairScheduler{})

	medF := median(smallFIFO)
	medR := median(smallFair)
	if medR*3 > medF {
		t.Fatalf("fair sharing should cut small-job latency >=3x: fifo=%v fair=%v", medF, medR)
	}
	// The big job pays only modestly for fairness.
	if bigFair > bigFIFO*2 {
		t.Fatalf("fairness tax on the big job too high: %v vs %v", bigFair, bigFIFO)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestFairSharingIsWorkConserving(t *testing.T) {
	// With a single app, fair and FIFO must perform identically: fairness
	// never idles capacity.
	mk := func(s yarn.Scheduler) time.Duration {
		eng, rm := newRM(t, 2, s)
		app, err := rm.Submit(uniformApp("only", "solo", 40, time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return app.Makespan()
	}
	if f, r := mk(yarn.FIFOScheduler{}), mk(yarn.FairScheduler{}); f != r {
		t.Fatalf("single-app makespan differs: fifo=%v fair=%v", f, r)
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	eng, rm := newRM(t, 1, nil)
	if _, err := rm.Submit(uniformApp("u", "x", 7, time.Minute)); err != nil {
		t.Fatal(err)
	}
	// AM 1vc + 7x2vc = 15 of 16 cores.
	if u := rm.Utilization(); u < 0.9 {
		t.Fatalf("utilization = %.2f, want ~0.94", u)
	}
	eng.Run()
	if rm.Utilization() != 0 {
		t.Fatal("utilization nonzero after completion")
	}
}

func TestMemoryConstrainedPacking(t *testing.T) {
	// Memory, not cores, is the bottleneck: 64 GB nodes, 30 GB containers
	// -> two per node regardless of cores.
	eng, rm := newRM(t, 2, nil)
	spec := yarn.AppSpec{Name: "mem", User: "m"}
	for i := 0; i < 8; i++ {
		spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
			Resource: yarn.Resource{VCores: 1, MemoryMB: 30 << 10},
			Duration: time.Minute,
		})
	}
	app, err := rm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 8 tasks, 2 nodes x 2 containers = 4 at a time -> 2 waves.
	if app.Makespan() != 2*time.Minute {
		t.Fatalf("makespan = %v, want 2m with memory-limited packing", app.Makespan())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []time.Duration {
		eng, rm := newRM(t, 4, yarn.FairScheduler{})
		var apps []*yarn.Application
		for i := 0; i < 6; i++ {
			a, err := rm.Submit(uniformApp(fmt.Sprintf("a%d", i), "u", 10+i, time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			apps = append(apps, a)
			eng.Advance(5 * time.Second)
		}
		eng.Run()
		var out []time.Duration
		for _, a := range apps {
			out = append(out, a.Makespan())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule: %v vs %v", a, b)
		}
	}
}

func BenchmarkFairSchedulerManyApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, rm := newRM(b, 8, yarn.FairScheduler{})
		for j := 0; j < 50; j++ {
			if _, err := rm.Submit(uniformApp(fmt.Sprintf("a%d", j), "u", 20, time.Minute)); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		if !rm.AllFinished() {
			b.Fatal("unfinished")
		}
	}
}

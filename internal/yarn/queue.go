package yarn

import (
	"fmt"
	"sort"
	"strings"
)

// QueueConfig declares one node of the hierarchical capacity-queue tree
// (Hadoop's capacity-scheduler.xml, minus the XML). Interior nodes carry
// children; leaves admit applications. Capacity is the share of the
// *parent's* guarantee this queue is promised; a leaf's effective
// guarantee is the product of Capacity down its path, as a fraction of
// the live cluster. MaxCapacity and UserLimitFactor bound elasticity:
// how far past its guarantee a queue (or one user inside it) may grow
// when the rest of the cluster is idle.
type QueueConfig struct {
	// Name is the queue's path segment ("students"); the full path joins
	// segments with dots ("root.students"). Root's name defaults to
	// "root".
	Name string
	// Capacity is the guaranteed share of the parent (siblings should
	// sum to 1.0; Validate enforces a 1% tolerance). Root's capacity is
	// fixed at 1.0.
	Capacity float64
	// MaxCapacity is the queue's elastic ceiling as an absolute fraction
	// of live cluster capacity (YARN's maximum-capacity). 0 means 1.0:
	// the queue may absorb the whole idle cluster.
	MaxCapacity float64
	// UserLimitFactor caps one user's usage inside the queue at
	// UserLimitFactor x the queue's guarantee (YARN's
	// user-limit-factor). 0 means 1.0: a single user can be promised at
	// most the queue's guarantee, however idle the cluster.
	UserLimitFactor float64
	// Children subdivide this queue; only childless queues admit apps.
	Children []QueueConfig
}

// DefaultQueues is the single-queue tree capacity mode falls back to: one
// leaf owning the whole cluster with unbounded elasticity — FIFO in a
// trench coat, the baseline every multi-queue config is compared against.
func DefaultQueues() QueueConfig {
	return QueueConfig{
		Name: "root",
		Children: []QueueConfig{
			{Name: "default", Capacity: 1.0, UserLimitFactor: 100},
		},
	}
}

// DefaultQueue is the leaf apps land in when AppSpec.Queue is empty.
const DefaultQueue = "default"

// leafQueue is a resolved leaf of the queue tree with live accounting.
type leafQueue struct {
	path string // full dotted path ("root.students")
	leaf string // final segment ("students")

	guaranteedFrac float64 // product of Capacity down the path
	maxFrac        float64 // absolute ceiling fraction of live capacity
	ulf            float64 // user-limit factor

	used Resource
	// userUsed is lookup-only accounting (never ranged): per-user usage
	// for the user-limit check.
	userUsed map[string]Resource

	// apps holds every unfinished app admitted to this leaf, submission
	// order. Scheduling walks this slice, so order is deterministic.
	apps []*Application
}

// guaranteed returns the leaf's promised share of capacity c.
func (q *leafQueue) guaranteed(c Resource) Resource {
	return Resource{
		VCores:   int(float64(c.VCores) * q.guaranteedFrac),
		MemoryMB: int64(float64(c.MemoryMB) * q.guaranteedFrac),
	}
}

// maxAllowed returns the leaf's elastic ceiling against capacity c.
func (q *leafQueue) maxAllowed(c Resource) Resource {
	return Resource{
		VCores:   int(float64(c.VCores) * q.maxFrac),
		MemoryMB: int64(float64(c.MemoryMB) * q.maxFrac),
	}
}

// userCap returns the per-user ceiling inside the leaf against capacity c.
func (q *leafQueue) userCap(c Resource) Resource {
	g := q.guaranteed(c)
	return Resource{
		VCores:   int(float64(g.VCores) * q.ulf),
		MemoryMB: int64(float64(g.MemoryMB) * q.ulf),
	}
}

// usedRatio is the queue's scheduling priority key: vcore usage over
// vcore guarantee (the capacity scheduler's canonical dimension). Lower
// ratio = more underserved = served first.
func (q *leafQueue) usedRatio(c Resource) float64 {
	g := float64(c.VCores) * q.guaranteedFrac
	if g <= 0 {
		if q.used.VCores > 0 {
			return 1e18
		}
		return 1e17 // zero-guarantee queues go last but stay schedulable
	}
	return float64(q.used.VCores) / g
}

// charge / uncharge maintain queue and per-user accounting.
func (q *leafQueue) charge(user string, r Resource) {
	q.used = q.used.plus(r)
	q.userUsed[user] = q.userUsed[user].plus(r)
}

func (q *leafQueue) uncharge(user string, r Resource) {
	q.used = q.used.minus(r)
	q.userUsed[user] = q.userUsed[user].minus(r)
}

func (q *leafQueue) removeApp(app *Application) {
	for i, a := range q.apps {
		if a == app {
			q.apps = append(q.apps[:i], q.apps[i+1:]...)
			return
		}
	}
}

// buildLeaves validates the tree and flattens it to leaves sorted by
// path. Returns an error for empty trees, sibling capacities that do not
// sum to ~1, or duplicate paths.
func buildLeaves(root QueueConfig) ([]*leafQueue, error) {
	if root.Name == "" {
		root.Name = "root"
	}
	root.Capacity = 1.0
	var leaves []*leafQueue
	seen := map[string]bool{}
	var walk func(q QueueConfig, path string, frac float64) error
	walk = func(q QueueConfig, path string, frac float64) error {
		if q.Name == "" {
			return fmt.Errorf("yarn: queue under %q has no name", path)
		}
		if strings.ContainsAny(q.Name, ". ,:") {
			return fmt.Errorf("yarn: queue name %q may not contain '.', ':', ',' or spaces", q.Name)
		}
		full := q.Name
		if path != "" {
			full = path + "." + q.Name
		}
		if seen[full] {
			return fmt.Errorf("yarn: duplicate queue path %q", full)
		}
		seen[full] = true
		eff := frac * q.Capacity
		if len(q.Children) == 0 {
			maxFrac := q.MaxCapacity
			if maxFrac <= 0 {
				maxFrac = 1.0
			}
			if maxFrac < eff-1e-9 {
				return fmt.Errorf("yarn: queue %q max capacity %.2f below its guarantee %.2f", full, maxFrac, eff)
			}
			ulf := q.UserLimitFactor
			if ulf <= 0 {
				ulf = 1.0
			}
			leaves = append(leaves, &leafQueue{
				path:           full,
				leaf:           q.Name,
				guaranteedFrac: eff,
				maxFrac:        maxFrac,
				ulf:            ulf,
				userUsed:       map[string]Resource{},
			})
			return nil
		}
		var sum float64
		for _, c := range q.Children {
			sum += c.Capacity
		}
		if sum < 0.99 || sum > 1.01 {
			return fmt.Errorf("yarn: children of %q have capacities summing to %.2f, want 1.0", full, sum)
		}
		for _, c := range q.Children {
			if err := walk(c, full, eff); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, "", 1.0); err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		return nil, fmt.Errorf("yarn: queue tree has no leaves")
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].path < leaves[j].path })
	return leaves, nil
}

// findLeaf resolves a queue reference: full dotted path first, then
// unique leaf segment. Empty name resolves to DefaultQueue when present,
// else the sole leaf.
func findLeaf(leaves []*leafQueue, name string) (*leafQueue, error) {
	if name == "" {
		if len(leaves) == 1 {
			return leaves[0], nil
		}
		name = DefaultQueue
	}
	var bySeg *leafQueue
	segMatches := 0
	for _, q := range leaves {
		if q.path == name {
			return q, nil
		}
		if q.leaf == name {
			bySeg = q
			segMatches++
		}
	}
	switch segMatches {
	case 1:
		return bySeg, nil
	case 0:
		return nil, fmt.Errorf("yarn: unknown queue %q", name)
	default:
		return nil, fmt.Errorf("yarn: queue name %q is ambiguous; use the full path", name)
	}
}

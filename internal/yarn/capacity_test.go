package yarn_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/yarn"
)

// testQueues is the three-tenant tree the capacity tests share.
func testQueues() yarn.QueueConfig {
	return yarn.QueueConfig{
		Name: "root",
		Children: []yarn.QueueConfig{
			{Name: "alpha", Capacity: 0.4, MaxCapacity: 0.7, UserLimitFactor: 2},
			{Name: "beta", Capacity: 0.4, MaxCapacity: 0.9, UserLimitFactor: 2},
			{Name: "default", Capacity: 0.2, UserLimitFactor: 2},
		},
	}
}

func newCapRM(t testing.TB, nodes int, opts yarn.CapacityOptions) (*sim.Engine, *yarn.ResourceManager) {
	t.Helper()
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(nodes, 1))
	rm, err := yarn.NewCapacityResourceManager(eng, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, rm
}

// drain advances the clock in fixed steps until every app finished (the
// preemption/autoscale tickers keep the event queue alive forever, so
// eng.Run() alone never returns in capacity mode).
func drain(t testing.TB, eng *sim.Engine, rm *yarn.ResourceManager, step time.Duration, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if rm.AllFinished() {
			return
		}
		eng.Advance(step)
	}
	t.Fatalf("workload did not drain after %v", time.Duration(maxSteps)*step)
}

// TestCapacityInvariantsAcrossSeeds is the scheduler's property test:
// randomized submissions across several seeds, then the event-sourced
// oracle (CheckLog) replays the scheduler's own log and asserts, event
// by event, that capacity was conserved on every node, no queue ever
// exceeded its max capacity at allocation time, every preemption was
// justified (victim queue over guarantee, starved queue under it, never
// an AM), and nodes only drained empty. On top of the log oracle it
// asserts liveness: every app finishes and none starves beyond a
// bounded wait.
func TestCapacityInvariantsAcrossSeeds(t *testing.T) {
	queues := []string{"alpha", "beta", "default"}
	for _, seed := range []int64{1, 7, 42, 99, 2026} {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			eng, rm := newCapRM(t, 6, yarn.CapacityOptions{
				Queues:     testQueues(),
				Preemption: yarn.PreemptionConfig{Enabled: true},
				Autoscale:  yarn.AutoscaleConfig{Enabled: true, MinNodes: 2},
			})
			rng := sim.NewRand(seed).Derive("prop")
			apps := make([]*yarn.Application, 0, 40)
			for i := 0; i < 40; i++ {
				spec := yarn.AppSpec{
					Name:  fmt.Sprintf("app-%02d", i),
					User:  fmt.Sprintf("u%d", rng.Intn(4)),
					Queue: queues[rng.Intn(len(queues))],
				}
				tasks := 1 + rng.Intn(6)
				for j := 0; j < tasks; j++ {
					spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
						Resource: yarn.Resource{VCores: 1, MemoryMB: 1024 + int64(rng.Intn(2))*1024},
						Duration: 30*time.Second + time.Duration(rng.Intn(150))*time.Second,
					})
				}
				at := sim.Time(rng.Intn(20)) * sim.Time(time.Minute)
				eng.Schedule(at, func() {
					app, err := rm.Submit(spec)
					if err != nil {
						t.Errorf("submit %s: %v", spec.Name, err)
						return
					}
					apps = append(apps, app)
				})
			}
			eng.RunUntil(sim.Time(20 * time.Minute))
			drain(t, eng, rm, 30*time.Second, 1000)

			if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
				t.Fatalf("event log violates scheduler invariants: %v", err)
			}
			if got := len(apps); got != 40 {
				t.Fatalf("only %d/40 apps were accepted", got)
			}
			for _, app := range apps {
				if app.State != yarn.AppFinished {
					t.Fatalf("%s never finished (state %v)", app.Spec.Name, app.State)
				}
				// Bounded starvation: on a cluster this size no app may wait
				// longer than 15 minutes for its first container.
				if w := app.WaitTime(); w > 15*time.Minute {
					t.Fatalf("%s starved: waited %v for its AM", app.Spec.Name, w)
				}
			}
			if u := rm.Utilization(); u != 0 {
				t.Fatalf("resources leaked: utilization %.3f after drain", u)
			}
		})
	}
}

// TestQueueMaxCapacityIsCeiling pins the elasticity contract: with the
// cluster otherwise idle a queue may grow past its guarantee, but never
// past MaxCapacity.
func TestQueueMaxCapacityIsCeiling(t *testing.T) {
	eng, rm := newCapRM(t, 4, yarn.CapacityOptions{Queues: testQueues()})
	// 4 nodes x 16 vc = 64 vc. alpha: guarantee 25.6 vc, ceiling 44.8 vc.
	spec := yarn.AppSpec{Name: "hog", User: "u0", Queue: "alpha"}
	for i := 0; i < 60; i++ {
		spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
			Resource: yarn.Resource{VCores: 1, MemoryMB: 512},
			Duration: time.Hour,
		})
	}
	app, err := rm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance(time.Minute)
	used := 0
	for _, c := range app.Containers() {
		if !c.Released() {
			used += c.Resource.VCores
		}
	}
	if used > 44 {
		t.Fatalf("alpha used %d vc, above its 0.7 ceiling of 44 vc", used)
	}
	if used < 40 {
		t.Fatalf("alpha used only %d vc on an idle cluster; elasticity should reach ~44", used)
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
}

// TestUserLimitSharesQueue pins the user-limit factor: one user cannot
// monopolize a queue their colleague is waiting in.
func TestUserLimitSharesQueue(t *testing.T) {
	eng, rm := newCapRM(t, 4, yarn.CapacityOptions{Queues: testQueues()})
	// alpha guarantee = 25.6 vc, ULF 2 -> per-user cap ~51 vc, but the
	// queue ceiling is 44 vc. Drop ULF by using "default" instead:
	// guarantee 12.8 vc, ULF 2 -> per-user cap 25.6 vc.
	mk := func(name, user string) *yarn.Application {
		spec := yarn.AppSpec{Name: name, User: user, Queue: "default"}
		for i := 0; i < 30; i++ {
			spec.Tasks = append(spec.Tasks, yarn.TaskSpec{
				Resource: yarn.Resource{VCores: 1, MemoryMB: 512},
				Duration: time.Hour,
			})
		}
		app, err := rm.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	a := mk("first", "alice")
	eng.Advance(time.Second)
	b := mk("second", "bob")
	eng.Advance(time.Minute)
	usedBy := func(app *yarn.Application) int {
		used := 0
		for _, c := range app.Containers() {
			if !c.Released() {
				used += c.Resource.VCores
			}
		}
		return used
	}
	au, bu := usedBy(a), usedBy(b)
	// The user limit may overshoot by at most one container past the cap
	// (26 vc incl. AM); the essential claim is bob is not starved.
	if au > 28 {
		t.Fatalf("alice holds %d vc despite the user limit", au)
	}
	if bu < 5 {
		t.Fatalf("bob got only %d vc; the user limit should leave him room", bu)
	}
	if err := yarn.CheckLog(rm.EventLog().Events()); err != nil {
		t.Fatal(err)
	}
}

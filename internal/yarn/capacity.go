package yarn

import (
	"fmt"
	"sort"
	"strconv"
)

// This file is the capacity scheduler's allocation engine: a
// deterministic scheduling pass that hands free containers to the most
// underserved queue first, plus the built-in task driver that runs plain
// AppSpec task lists as managed apps.

// kick runs scheduling passes until no more containers can be placed.
// Re-entrant calls (AppMaster callbacks frequently Request/Release from
// inside a pass) just mark the pass dirty; the outer loop re-runs until
// a full pass places nothing and nothing re-dirtied it.
func (rm *ResourceManager) kick() {
	if !rm.capacityMode() || rm.inPass {
		rm.passDirty = true
		return
	}
	rm.inPass = true
	for {
		rm.passDirty = false
		for rm.allocateOne() {
		}
		if !rm.passDirty {
			break
		}
	}
	rm.inPass = false
	rm.m.pendingApps.Set(int64(rm.pendingApps()))
}

func (rm *ResourceManager) pendingApps() int {
	n := 0
	for _, a := range rm.apps {
		if a.State == AppPending {
			n++
		}
	}
	return n
}

// allocateOne places exactly one container: walk leaves from most
// underserved (lowest used/guaranteed vcore ratio, ties by path), and
// within a leaf walk apps in submission order. A pending app's head
// request is its AM container; a running app's is the front of its
// request queue. Blocked apps (queue ceiling, user limit, no node with
// room) are skipped so the pass stays work-conserving. Returns false
// when nothing anywhere can be placed.
func (rm *ResourceManager) allocateOne() bool {
	capNow := rm.ClusterCapacity()
	leaves := append([]*leafQueue(nil), rm.leaves...)
	sort.SliceStable(leaves, func(i, j int) bool {
		ri, rj := leaves[i].usedRatio(capNow), leaves[j].usedRatio(capNow)
		if ri != rj {
			return ri < rj
		}
		return leaves[i].path < leaves[j].path
	})
	for _, q := range leaves {
		maxAll := q.maxAllowed(capNow)
		uCap := q.userCap(capNow)
		for _, app := range q.apps {
			var res Resource
			var isAM bool
			switch {
			case app.State == AppPending:
				res, isAM = app.Spec.AMResource, true
			case app.State == AppRunning && len(app.requests) > 0:
				res = app.requests[0].Resource
			default:
				continue
			}
			if !q.used.plus(res).Fits(maxAll) {
				continue // queue at its elastic ceiling for this size
			}
			// User limit: a user already at or past their cap gets
			// nothing more. A user below it may overshoot by at most one
			// container (YARN's behaviour), which guarantees progress
			// even when the cap rounds below a single container.
			if uu := q.userUsed[app.User]; uu.VCores > 0 && uu.VCores >= uCap.VCores {
				continue
			}
			var nm *nodeManager
			if isAM {
				nm = rm.allocate(res)
			} else {
				nm = rm.placeFor(app.requests[0])
			}
			if nm == nil {
				continue // no node fits; let a smaller request through
			}
			rm.grantContainer(app, q, nm, res, isAM)
			return true
		}
	}
	return false
}

// placeFor picks a node for a request: locality hosts in preference
// order first, then the emptiest node (allocate's spreading policy).
func (rm *ResourceManager) placeFor(req ContainerRequest) *nodeManager {
	for _, h := range req.Hosts {
		for _, nm := range rm.nodes {
			if nm.active && nm.hostname == h && req.Resource.Fits(nm.free()) {
				return nm
			}
		}
	}
	return rm.allocate(req.Resource)
}

// grantContainer commits one allocation: charge node + queue + user,
// emit the event, and hand the container to the app's master.
func (rm *ResourceManager) grantContainer(app *Application, q *leafQueue, nm *nodeManager, res Resource, isAM bool) {
	rm.containerSeq++
	c := &Container{
		ID:        rm.containerSeq,
		App:       app,
		Node:      nm.id,
		Resource:  res,
		AM:        isAM,
		StartedAt: rm.eng.Now(),
		ctx:       app.ctx.NewChild(),
	}
	if isAM {
		app.amContainer = c
		app.State = AppRunning
		app.StartedAt = rm.eng.Now()
	} else {
		c.Tag = app.requests[0].Tag
		app.requests = app.requests[1:]
		app.containers = append(app.containers, c)
	}
	nm.used = nm.used.plus(res)
	nm.containers = append(nm.containers, c)
	q.charge(app.User, res)
	rm.ContainersLaunched++
	rm.m.containersAllocated.Inc()
	attrs := map[string]string{
		"container": c.idStr(),
		"app":       appID(app),
		"queue":     q.path,
		"user":      app.User,
		"node":      fmt.Sprint(int(nm.id)),
		"vc":        fmt.Sprint(res.VCores),
		"mb":        fmt.Sprint(res.MemoryMB),
	}
	if isAM {
		attrs["am"] = "1"
	} else if c.Tag != "" {
		attrs["tag"] = c.Tag
	}
	rm.event(EvAlloc, attrs)
	if isAM {
		rm.event(EvAMStart, map[string]string{
			"app": appID(app), "container": c.idStr(), "node": fmt.Sprint(int(nm.id)),
		})
		return
	}
	if app.master != nil {
		app.master.OnAllocated(c)
	}
}

// taskMaster is the built-in AppMaster that drives a plain AppSpec task
// list through the capacity scheduler: one request per task (tagged with
// the task index), hold each granted container for the task's duration,
// re-request on preemption, finish the app when every task has run to
// completion.
type taskMaster struct {
	rm   *ResourceManager
	app  *Application
	done int
}

func (tm *taskMaster) start() {
	for i, t := range tm.app.Spec.Tasks {
		tm.rm.Request(tm.app, ContainerRequest{Resource: t.Resource, Tag: strconv.Itoa(i)})
	}
}

func (tm *taskMaster) OnAllocated(c *Container) {
	idx, err := strconv.Atoi(c.Tag)
	if err != nil || idx < 0 || idx >= len(tm.app.Spec.Tasks) {
		tm.rm.Release(c, "bad_tag")
		return
	}
	d := tm.app.Spec.Tasks[idx].Duration
	tm.rm.eng.After(d, func() {
		if c.Released() {
			return // preempted (and re-requested) before it could finish
		}
		tm.done++
		tm.rm.Release(c, "complete")
		if tm.done == len(tm.app.Spec.Tasks) {
			tm.rm.FinishApp(tm.app)
		}
	})
}

func (tm *taskMaster) OnPreempted(c *Container) {
	idx, err := strconv.Atoi(c.Tag)
	if err != nil || idx < 0 || idx >= len(tm.app.Spec.Tasks) {
		return
	}
	// The attempt's work is lost; ask for a fresh container to redo it.
	tm.rm.Request(tm.app, ContainerRequest{
		Resource: tm.app.Spec.Tasks[idx].Resource,
		Tag:      c.Tag,
	})
}

package iofmt

import (
	"encoding/binary"
	"fmt"
)

// lzsCodec is a small deterministic LZ77-family codec in the spirit of
// the LZO/Snappy class Hadoop deploys for splittable block compression:
// much cheaper than DEFLATE, worse ratio, and — crucially for teaching —
// simple enough to read in one sitting. The encoder is greedy with a
// 4-byte hash table, so identical input always yields identical output.
//
// Stream layout: a 4-byte magic, a uvarint raw length, then tokens.
//
//	literal token: one byte 0x01..0x7F = n, followed by n literal bytes
//	match token:   one byte 0x80|(len-minMatch), len in [4, 131],
//	               followed by a 2-byte big-endian distance in [1, 65535]
type lzsCodec struct{}

const (
	lzsMagic    = "LZS1"
	lzsMinMatch = 4
	lzsMaxMatch = lzsMinMatch + 0x7F
	lzsMaxDist  = 1 << 16
	lzsMaxLit   = 0x7F
	lzsHashBits = 14
)

func (lzsCodec) Name() string      { return "lzs" }
func (lzsCodec) Extension() string { return ".lzs" }

// Splittable is false for the same reason as gzip: a bare .lzs file is
// one stream. The codec becomes splittable only inside a SequenceFile,
// where each block is compressed independently between sync markers.
func (lzsCodec) Splittable() bool { return false }

func lzsHash(v uint32) uint32 {
	// Multiplicative hash of a 4-byte window (Knuth constant).
	return (v * 2654435761) >> (32 - lzsHashBits)
}

func (lzsCodec) Compress(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)/2+16)
	out = append(out, lzsMagic...)
	out = binary.AppendUvarint(out, uint64(len(data)))

	var table [1 << lzsHashBits]int32
	for i := range table {
		table[i] = -1
	}
	emitLiterals := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n > lzsMaxLit {
				n = lzsMaxLit
			}
			out = append(out, byte(n))
			out = append(out, lit[:n]...)
			lit = lit[n:]
		}
	}

	litStart := 0
	pos := 0
	for pos+lzsMinMatch <= len(data) {
		h := lzsHash(binary.LittleEndian.Uint32(data[pos:]))
		cand := table[h]
		table[h] = int32(pos)
		if cand < 0 || pos-int(cand) >= lzsMaxDist ||
			binary.LittleEndian.Uint32(data[cand:]) != binary.LittleEndian.Uint32(data[pos:]) {
			pos++
			continue
		}
		// Extend the match as far as it goes (bounded by the token).
		length := lzsMinMatch
		for pos+length < len(data) && length < lzsMaxMatch &&
			data[int(cand)+length] == data[pos+length] {
			length++
		}
		emitLiterals(data[litStart:pos])
		out = append(out, byte(0x80|(length-lzsMinMatch)))
		out = binary.BigEndian.AppendUint16(out, uint16(pos-int(cand)))
		pos += length
		litStart = pos
	}
	emitLiterals(data[litStart:])
	return out, nil
}

func (lzsCodec) Decompress(data []byte) ([]byte, error) {
	if len(data) < len(lzsMagic) || string(data[:len(lzsMagic)]) != lzsMagic {
		return nil, fmt.Errorf("%w: not an lzs stream", ErrBadMagic)
	}
	rest := data[len(lzsMagic):]
	rawLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad lzs length header", ErrCorrupt)
	}
	rest = rest[n:]
	out := make([]byte, 0, rawLen)
	for len(rest) > 0 {
		tok := rest[0]
		rest = rest[1:]
		if tok == 0 {
			return nil, fmt.Errorf("%w: zero lzs token", ErrCorrupt)
		}
		if tok < 0x80 {
			n := int(tok)
			if n > len(rest) {
				return nil, fmt.Errorf("%w: lzs literal run past end", ErrTruncated)
			}
			out = append(out, rest[:n]...)
			rest = rest[n:]
			continue
		}
		length := int(tok&0x7F) + lzsMinMatch
		if len(rest) < 2 {
			return nil, fmt.Errorf("%w: lzs match token past end", ErrTruncated)
		}
		dist := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if dist == 0 || dist > len(out) {
			return nil, fmt.Errorf("%w: lzs match distance %d at output size %d", ErrCorrupt, dist, len(out))
		}
		// Byte-at-a-time copy: matches may overlap their own output
		// (run-length encoding via distance < length).
		for i := 0; i < length; i++ {
			out = append(out, out[len(out)-dist])
		}
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("%w: lzs stream decoded %d bytes, header says %d", ErrCorrupt, len(out), rawLen)
	}
	return out, nil
}

package iofmt

import "encoding/binary"

// Record framing: the uvarint length-prefixed key/value encoding shared
// by the SequenceFile payload format and every other spot in the stack
// that lays records out flat in a byte buffer. The Append/Consume pair is
// allocation-free by construction — AppendRecord extends the caller's
// buffer in place, ConsumeRecord returns subslices of its input — so the
// hot write and scan loops of both runtimes can frame millions of records
// without a single per-record allocation.

// AppendRecord appends one framed record (keyLen key valLen val, lengths
// as uvarints) to dst and returns the extended buffer, in the manner of
// strconv's Append functions.
func AppendRecord(dst, key, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, val...)
	return dst
}

// AppendRecordString is AppendRecord for string key/value without forcing
// the caller through a []byte conversion (and its allocation).
func AppendRecordString(dst []byte, key, val string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, val...)
	return dst
}

// RecordSize returns the framed size of a record without building it.
func RecordSize(keyLen, valLen int) int {
	return uvarintLen(uint64(keyLen)) + keyLen + uvarintLen(uint64(valLen)) + valLen
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ConsumeRecord pops one framed record off the front of b, returning the
// key and value as subslices of b plus the remainder. The error is
// ErrCorrupt for a malformed length and ErrTruncated for a buffer that
// ends mid-record.
func ConsumeRecord(b []byte) (key, val, rest []byte, err error) {
	key, rest, err = takeBytes(b)
	if err != nil {
		return nil, nil, nil, err
	}
	val, rest, err = takeBytes(rest)
	if err != nil {
		return nil, nil, nil, err
	}
	return key, val, rest, nil
}

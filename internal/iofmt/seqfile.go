package iofmt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// The SequenceFile container, modelled on Hadoop's block-compressed
// SequenceFile: a small header, then blocks of records, each block
// preceded by a 16-byte sync marker and compressed independently. The
// sync markers are what make the format splittable regardless of codec:
// a reader dropped at any byte offset scans forward to the next marker
// and is guaranteed to be at a block boundary — so a map task can own
// exactly the blocks whose markers start inside its byte range, and a
// whole file can be processed in parallel even though every block is
// compressed.
//
// Layout (all integers are uvarints unless noted):
//
//	header: magic "SEQ1" | version byte | codecNameLen | codecName | sync[16]
//	block:  sync[16] | recordCount | rawLen | payloadLen | payload
//	payload (after decompression): recordCount × (keyLen key valLen val)
//
// The sync marker is derived deterministically from the codec name, so
// same-seed runs write byte-identical files.

// SeqMagic is the container's leading magic number.
const SeqMagic = "SEQ1"

const (
	seqVersion  = 1
	SyncSize    = 16
	maxSaneUint = 1 << 31 // structural sanity bound for uvarint fields
)

// SyncMarker returns the deterministic 16-byte sync marker used by files
// whose blocks are compressed with the named codec ("" or "none" for
// uncompressed blocks).
func SyncMarker(codecName string) [SyncSize]byte {
	sum := sha256.Sum256([]byte("repro.iofmt.seq\x00" + codecName))
	var sync [SyncSize]byte
	copy(sync[:], sum[:SyncSize])
	return sync
}

// canonicalCodecName normalises the stored codec name.
func canonicalCodecName(c Codec) string {
	if c == nil {
		return "none"
	}
	return c.Name()
}

// --- writer ---

// SeqWriterOptions tunes a SeqWriter.
type SeqWriterOptions struct {
	// Codec compresses each block's payload (nil = store raw).
	Codec Codec
	// BlockRecords caps records per block (default 1000).
	BlockRecords int
	// BlockBytes caps the raw payload bytes per block (default 64 KiB).
	// Smaller blocks mean more sync points and finer split granularity,
	// at the price of compression ratio — the knob the IO lab turns.
	BlockBytes int
}

func (o SeqWriterOptions) withDefaults() SeqWriterOptions {
	if o.BlockRecords <= 0 {
		o.BlockRecords = 1000
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 64 << 10
	}
	return o
}

// SeqWriter appends typed key/value records to a SequenceFile.
type SeqWriter struct {
	w    io.Writer
	opts SeqWriterOptions
	sync [SyncSize]byte

	buf     []byte // raw payload of the open block
	blk     []byte // reused container-block scratch (sync + header + payload)
	bufRecs int

	// Records, RawBytes and WrittenBytes meter the file: logical record
	// count, uncompressed payload bytes, and actual container bytes
	// (header, syncs, block headers, compressed payloads).
	Records      int64
	RawBytes     int64
	WrittenBytes int64

	closed bool
}

// NewSeqWriter writes the header and returns a writer. The error is the
// underlying io.Writer's.
func NewSeqWriter(w io.Writer, opts SeqWriterOptions) (*SeqWriter, error) {
	opts = opts.withDefaults()
	sw := &SeqWriter{w: w, opts: opts, sync: SyncMarker(canonicalCodecName(opts.Codec))}
	name := canonicalCodecName(opts.Codec)
	hdr := append([]byte(SeqMagic), seqVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = append(hdr, sw.sync[:]...)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	sw.WrittenBytes += int64(len(hdr))
	return sw, nil
}

// Append adds one record, flushing a block when the open block is full.
func (sw *SeqWriter) Append(key, val []byte) error {
	if sw.closed {
		return io.ErrClosedPipe
	}
	sw.buf = AppendRecord(sw.buf, key, val)
	return sw.noteAppend()
}

// AppendString adds one record from string key/value. It frames directly
// into the open block's buffer, so (unlike Append on converted strings)
// no per-record []byte copies are made.
func (sw *SeqWriter) AppendString(key, val string) error {
	if sw.closed {
		return io.ErrClosedPipe
	}
	sw.buf = AppendRecordString(sw.buf, key, val)
	return sw.noteAppend()
}

func (sw *SeqWriter) noteAppend() error {
	sw.bufRecs++
	sw.Records++
	if sw.bufRecs >= sw.opts.BlockRecords || len(sw.buf) >= sw.opts.BlockBytes {
		return sw.flushBlock()
	}
	return nil
}

func (sw *SeqWriter) flushBlock() error {
	if sw.bufRecs == 0 {
		return nil
	}
	payload := sw.buf
	if sw.opts.Codec != nil {
		var err error
		payload, err = sw.opts.Codec.Compress(sw.buf)
		if err != nil {
			return err
		}
	}
	// blk is scratch reused across blocks: after the first flush the only
	// per-block allocation left is whatever the codec itself makes.
	blk := append(sw.blk[:0], sw.sync[:]...)
	blk = binary.AppendUvarint(blk, uint64(sw.bufRecs))
	blk = binary.AppendUvarint(blk, uint64(len(sw.buf)))
	blk = binary.AppendUvarint(blk, uint64(len(payload)))
	blk = append(blk, payload...)
	sw.blk = blk
	if _, err := sw.w.Write(blk); err != nil {
		return err
	}
	sw.WrittenBytes += int64(len(blk))
	sw.RawBytes += int64(len(sw.buf))
	sw.buf = sw.buf[:0]
	sw.bufRecs = 0
	return nil
}

// Close flushes the final block. It does not close the underlying writer.
func (sw *SeqWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	return sw.flushBlock()
}

// --- reader ---

// SeqRecord is one decoded record with the file offset of the sync
// marker of the block it came from.
type SeqRecord struct {
	Offset   int64
	Key, Val []byte
}

// TextLine renders the record the way line-oriented consumers (the
// mapper input layer, `hadoop fs -text`) see it: "key<TAB>value", or
// the value alone when the key is empty — so a SequenceFile written
// from text lines round-trips to the same lines.
func (r SeqRecord) TextLine() string {
	if len(r.Key) == 0 {
		return string(r.Val)
	}
	return string(r.Key) + "\t" + string(r.Val)
}

// SeqStats meters one split read.
type SeqStats struct {
	// BytesFetched is how much of the container was pulled from storage
	// (compressed form, including markers and block headers).
	BytesFetched int64
	// RawBytes is the decompressed payload volume delivered.
	RawBytes int64
	// Blocks is how many blocks this split owned.
	Blocks int
	// CodecName is the codec recorded in the header.
	CodecName string
}

// RangeReaderFunc fetches [off, off+length) of a file; short results at
// end-of-file are allowed. It is the seam through which both the plain
// filesystems and the HDFS client (with its metered ranged block reads)
// back the split reader.
type RangeReaderFunc func(off, length int64) ([]byte, error)

// seqFetcher grows a forward-only window over the file via chunked
// ranged reads, so a reader never fetches more of a container than its
// split plus the tail of its final block.
type seqFetcher struct {
	read    RangeReaderFunc
	size    int64
	base    int64 // file offset of window[0]
	window  []byte
	fetched int64
	chunk   int64
}

func newSeqFetcher(read RangeReaderFunc, size, start int64) *seqFetcher {
	return &seqFetcher{read: read, size: size, base: start, chunk: 128 << 10}
}

// ensure makes [off, off+n) available, returning false at end-of-file.
func (f *seqFetcher) ensure(off, n int64) (bool, error) {
	if off+n > f.size {
		return false, nil
	}
	for f.base+int64(len(f.window)) < off+n {
		at := f.base + int64(len(f.window))
		want := f.chunk
		if at+want > f.size {
			want = f.size - at
		}
		if want <= 0 {
			return false, nil
		}
		data, err := f.read(at, want)
		if err != nil {
			return false, err
		}
		f.fetched += int64(len(data))
		f.window = append(f.window, data...)
		if int64(len(data)) < want {
			break // storage returned short: treat as EOF
		}
	}
	return f.base+int64(len(f.window)) >= off+n, nil
}

func (f *seqFetcher) bytes(off, n int64) []byte {
	i := off - f.base
	return f.window[i : i+n]
}

// seqHeader is the parsed file header.
type seqHeader struct {
	codec Codec
	name  string
	sync  [SyncSize]byte
	len   int64
}

func readSeqHeader(read RangeReaderFunc, size int64) (*seqHeader, error) {
	// The header is tiny; 64 bytes covers any registered codec name.
	want := int64(64)
	if want > size {
		want = size
	}
	data, err := read(0, want)
	if err != nil {
		return nil, err
	}
	if len(data) < len(SeqMagic)+1 || string(data[:len(SeqMagic)]) != SeqMagic {
		return nil, fmt.Errorf("%w: not a SequenceFile", ErrBadMagic)
	}
	if data[len(SeqMagic)] != seqVersion {
		return nil, fmt.Errorf("%w: unsupported SequenceFile version %d", ErrCorrupt, data[len(SeqMagic)])
	}
	rest := data[len(SeqMagic)+1:]
	nameLen, n := binary.Uvarint(rest)
	if n <= 0 || nameLen > 40 || int(nameLen)+n+SyncSize > len(rest) {
		return nil, fmt.Errorf("%w: SequenceFile header cut short", ErrTruncated)
	}
	rest = rest[n:]
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	h := &seqHeader{name: name, len: int64(len(SeqMagic)) + 1 + int64(n) + int64(nameLen) + SyncSize}
	copy(h.sync[:], rest[:SyncSize])
	if name != "none" {
		c, err := ByName(name)
		if err != nil {
			return nil, err
		}
		h.codec = c
	}
	return h, nil
}

// ReadSeqSplit decodes the records of the split [off, end) of a
// SequenceFile: exactly the blocks whose sync marker starts inside the
// range (treating offsets inside the header as the first block's start).
// Splitting a file at every possible offset therefore yields the same
// record multiset as reading it whole — the invariant the property tests
// pin.
func ReadSeqSplit(read RangeReaderFunc, fileSize, off, end int64) ([]SeqRecord, SeqStats, error) {
	var stats SeqStats
	hdr, err := readSeqHeader(read, fileSize)
	if err != nil {
		return nil, stats, err
	}
	stats.BytesFetched += hdr.len
	stats.CodecName = hdr.name
	if end > fileSize {
		end = fileSize
	}
	start := off
	if start < hdr.len {
		start = hdr.len
	}
	if start >= end {
		return nil, stats, nil
	}

	f := newSeqFetcher(read, fileSize, start)
	pos, ok, err := scanSync(f, start, hdr.sync)
	if err != nil {
		return nil, stats, err
	}
	var recs []SeqRecord
	for ok && pos < end {
		blockStart := pos
		recCount, rawLen, payloadLen, bodyOff, err := readBlockHeader(f, pos+SyncSize)
		if err != nil {
			return nil, stats, err
		}
		have, err := f.ensure(bodyOff, payloadLen)
		if err != nil {
			return nil, stats, err
		}
		if !have {
			return nil, stats, fmt.Errorf("%w: SequenceFile block at offset %d cut short", ErrTruncated, blockStart)
		}
		payload := f.bytes(bodyOff, payloadLen)
		raw := payload
		if hdr.codec != nil {
			raw, err = hdr.codec.Decompress(payload)
			if err != nil {
				return nil, stats, err
			}
		}
		if int64(len(raw)) != rawLen {
			return nil, stats, fmt.Errorf("%w: block at %d decoded %d bytes, header says %d", ErrCorrupt, blockStart, len(raw), rawLen)
		}
		if need := len(recs) + int(recCount); cap(recs) < need {
			recs = slices.Grow(recs, int(recCount))
		}
		for i := int64(0); i < recCount; i++ {
			key, val, rest, err := ConsumeRecord(raw)
			if err != nil {
				return nil, stats, fmt.Errorf("%w: record %d of block at %d", err, i, blockStart)
			}
			raw = rest
			recs = append(recs, SeqRecord{Offset: blockStart, Key: key, Val: val})
		}
		stats.Blocks++
		stats.RawBytes += rawLen
		pos = bodyOff + payloadLen
		if pos >= fileSize {
			break
		}
		// The next block must begin with a sync marker exactly here.
		have, err = f.ensure(pos, SyncSize)
		if err != nil {
			return nil, stats, err
		}
		if !have {
			return nil, stats, fmt.Errorf("%w: trailing bytes after block at %d", ErrTruncated, blockStart)
		}
		if !bytes.Equal(f.bytes(pos, SyncSize), hdr.sync[:]) {
			return nil, stats, fmt.Errorf("%w: missing sync marker at offset %d", ErrCorrupt, pos)
		}
	}
	stats.BytesFetched += f.fetched
	return recs, stats, nil
}

// ReadSeqFile decodes every record of a SequenceFile.
func ReadSeqFile(read RangeReaderFunc, fileSize int64) ([]SeqRecord, SeqStats, error) {
	return ReadSeqSplit(read, fileSize, 0, fileSize)
}

// ReadSeqBytes decodes an in-memory SequenceFile (shell -text, tests).
func ReadSeqBytes(data []byte) ([]SeqRecord, SeqStats, error) {
	return ReadSeqFile(BytesRangeReader(data), int64(len(data)))
}

// BytesRangeReader adapts an in-memory file to a RangeReaderFunc.
func BytesRangeReader(data []byte) RangeReaderFunc {
	return func(off, length int64) ([]byte, error) {
		if off >= int64(len(data)) {
			return nil, nil
		}
		end := off + length
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		return data[off:end], nil
	}
}

// scanSync finds the first sync marker whose first byte is at or after
// from, returning its offset (ok=false when the rest of the file has no
// marker).
func scanSync(f *seqFetcher, from int64, sync [SyncSize]byte) (int64, bool, error) {
	pos := from
	for {
		// Fetch a window and search it; keep SyncSize-1 bytes of overlap
		// so markers straddling chunk boundaries are found.
		have, err := f.ensure(pos, SyncSize)
		if err != nil {
			return 0, false, err
		}
		if !have {
			return 0, false, nil
		}
		limit := f.base + int64(len(f.window))
		i := bytes.Index(f.bytes(pos, limit-pos), sync[:])
		if i >= 0 {
			return pos + int64(i), true, nil
		}
		pos = limit - (SyncSize - 1)
		if limit >= f.size {
			return 0, false, nil
		}
	}
}

// readBlockHeader parses the three uvarints after a sync marker,
// returning the offset where the payload begins.
func readBlockHeader(f *seqFetcher, at int64) (recCount, rawLen, payloadLen, bodyOff int64, err error) {
	// Three maximal uvarints fit in 30 bytes.
	want := int64(30)
	if at+want > f.size {
		want = f.size - at
	}
	if want <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: block header past end of file", ErrTruncated)
	}
	if _, err := f.ensure(at, want); err != nil {
		return 0, 0, 0, 0, err
	}
	hdr := f.bytes(at, want)
	var vals [3]int64
	off := 0
	for i := range vals {
		v, n := binary.Uvarint(hdr[off:])
		if n <= 0 || v > maxSaneUint {
			return 0, 0, 0, 0, fmt.Errorf("%w: bad block header", ErrTruncated)
		}
		vals[i] = int64(v)
		off += n
	}
	return vals[0], vals[1], vals[2], at + int64(off), nil
}

// takeBytes pops one uvarint-length-prefixed byte string.
func takeBytes(b []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxSaneUint {
		return nil, nil, ErrCorrupt
	}
	b = b[sz:]
	if int64(n) > int64(len(b)) {
		return nil, nil, ErrTruncated
	}
	return b[:n], b[n:], nil
}

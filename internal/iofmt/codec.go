// Package iofmt is the storage-format layer of the stack: a pluggable
// compression-codec registry and a splittable binary SequenceFile
// container with sync markers — the Hadoop lesson that file formats and
// splittable-vs-non-splittable compression decide how much parallelism a
// job can have before a single map task even runs.
//
// Everything here is deterministic: the same input bytes always produce
// the same compressed bytes, so the simulation's golden traces and
// benchmark artifacts stay byte-stable across runs.
package iofmt

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sentinel errors shared by codecs and the SequenceFile reader.
var (
	// ErrUnknownCodec reports a codec name or extension with no
	// registered implementation.
	ErrUnknownCodec = errors.New("iofmt: unknown codec")
	// ErrBadMagic reports a container whose leading bytes are not the
	// expected magic number.
	ErrBadMagic = errors.New("iofmt: bad magic")
	// ErrTruncated reports a container that ends mid-structure.
	ErrTruncated = errors.New("iofmt: truncated data")
	// ErrCorrupt reports structurally invalid compressed data.
	ErrCorrupt = errors.New("iofmt: corrupt data")
)

// Codec is one whole-buffer compression scheme. Codecs operate on byte
// slices rather than streams: every caller in the stack (shuffle sizing,
// SequenceFile blocks, text part files) holds the data in memory anyway,
// and slices keep Compress(Decompress(x)) == x trivially checkable.
type Codec interface {
	// Name is the registry key ("gzip", "lzs").
	Name() string
	// Extension is the file suffix that implies this codec (".gz"), or
	// "" for codecs never used as a bare file suffix.
	Extension() string
	// Splittable reports whether a file compressed as one stream of this
	// codec can be split for parallel reading. Whole-stream codecs like
	// gzip cannot: byte offset N is meaningless without bytes 0..N-1.
	Splittable() bool
	// Compress returns the encoded form of data.
	Compress(data []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(data []byte) ([]byte, error)
}

var (
	codecsByName = map[string]Codec{}
	codecsByExt  = map[string]Codec{}
)

// Register adds a codec to the registry; later registrations of the same
// name or extension win, so tests can shadow built-ins.
func Register(c Codec) {
	codecsByName[c.Name()] = c
	if ext := c.Extension(); ext != "" {
		codecsByExt[ext] = c
	}
}

// ByName returns the codec registered under name. The empty string and
// "none" mean "no codec" and return (nil, nil).
func ByName(name string) (Codec, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	c, ok := codecsByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
	return c, nil
}

// ByExtension returns the codec implied by a file path's suffix, or nil
// when the path has no codec suffix. Extensions are tried in sorted
// order so a path matching more than one registered suffix resolves the
// same way every run.
func ByExtension(path string) Codec {
	exts := make([]string, 0, len(codecsByExt))
	for ext := range codecsByExt {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		if strings.HasSuffix(path, ext) {
			return codecsByExt[ext]
		}
	}
	return nil
}

// CodecNames lists the registered codec names, sorted.
func CodecNames() []string {
	names := make([]string, 0, len(codecsByName))
	for n := range codecsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- gzip ---

// gzipCodec wraps the stdlib DEFLATE implementation. With a zero header
// (no mod time, no name) the output is a pure function of the input, so
// simulated wire and disk sizes are reproducible.
type gzipCodec struct{}

func (gzipCodec) Name() string      { return "gzip" }
func (gzipCodec) Extension() string { return ".gz" }
func (gzipCodec) Splittable() bool  { return false }

func (gzipCodec) Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (gzipCodec) Decompress(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// CompressedSize returns the encoded size of data under codec — the
// number the shuffle and storage cost models meter. A nil codec is the
// identity: raw size.
func CompressedSize(c Codec, data []byte) (int64, error) {
	if c == nil {
		return int64(len(data)), nil
	}
	enc, err := c.Compress(data)
	if err != nil {
		return 0, err
	}
	return int64(len(enc)), nil
}

func init() {
	Register(gzipCodec{})
	Register(lzsCodec{})
}

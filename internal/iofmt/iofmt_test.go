package iofmt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// corpus builds deterministic pseudo-text: Zipf-ish repeated words so
// codecs have something to find, plus runs and binary noise to exercise
// edge cases.
func corpus(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "quick", "brown", "fox", "mapreduce", "hdfs", "block", "sync", "a", "of"}
	var buf bytes.Buffer
	for buf.Len() < n {
		switch rng.Intn(10) {
		case 0: // run of one byte
			b := byte(rng.Intn(256))
			k := rng.Intn(200)
			for i := 0; i < k; i++ {
				buf.WriteByte(b)
			}
		case 1: // binary noise
			k := rng.Intn(64)
			for i := 0; i < k; i++ {
				buf.WriteByte(byte(rng.Intn(256)))
			}
		default:
			buf.WriteString(words[rng.Intn(len(words))])
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:n]
}

func TestCodecRoundTripProperty(t *testing.T) {
	for _, name := range CodecNames() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 20; seed++ {
			for _, n := range []int{0, 1, 3, 100, 4096, 70000} {
				data := corpus(seed*31+int64(n), n)
				enc, err := c.Compress(data)
				if err != nil {
					t.Fatalf("%s seed=%d n=%d: compress: %v", name, seed, n, err)
				}
				dec, err := c.Decompress(enc)
				if err != nil {
					t.Fatalf("%s seed=%d n=%d: decompress: %v", name, seed, n, err)
				}
				if !bytes.Equal(dec, data) {
					t.Fatalf("%s seed=%d n=%d: round trip mismatch", name, seed, n)
				}
				// Determinism: same input, same bytes.
				enc2, _ := c.Compress(data)
				if !bytes.Equal(enc, enc2) {
					t.Fatalf("%s seed=%d n=%d: non-deterministic compress", name, seed, n)
				}
			}
		}
	}
}

func TestLzsCompresses(t *testing.T) {
	data := bytes.Repeat([]byte("hello world "), 1000)
	enc, err := lzsCodec{}.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(data)/4 {
		t.Fatalf("lzs barely compressed repetitive text: %d -> %d", len(data), len(enc))
	}
}

func TestLzsErrorPaths(t *testing.T) {
	c := lzsCodec{}
	if _, err := c.Decompress([]byte("nope")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	good, _ := c.Compress([]byte("some data to compress, some data to compress"))
	if _, err := c.Decompress(good[:len(good)-3]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	// A match token pointing before the start of output.
	bad := []byte(lzsMagic)
	bad = append(bad, 10)         // raw length
	bad = append(bad, 0x80, 0, 5) // match len 4, dist 5 at output size 0
	if _, err := c.Decompress(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad distance: got %v", err)
	}
}

func TestByNameAndExtension(t *testing.T) {
	for _, empty := range []string{"", "none"} {
		c, err := ByName(empty)
		if err != nil || c != nil {
			t.Fatalf("ByName(%q) = %v, %v", empty, c, err)
		}
	}
	if _, err := ByName("zstd-not-here"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown codec: got %v", err)
	}
	if c := ByExtension("/data/corpus.txt.gz"); c == nil || c.Name() != "gzip" {
		t.Fatalf("ByExtension .gz = %v", c)
	}
	if c := ByExtension("/data/corpus.txt"); c != nil {
		t.Fatalf("ByExtension .txt = %v", c)
	}
}

func TestDetectPath(t *testing.T) {
	cases := []struct {
		path       string
		kind       Kind
		codec      string
		splittable bool
	}{
		{"/data/a.txt", KindText, "", true},
		{"/data/a.txt.gz", KindText, "gzip", false},
		{"/data/a.lzs", KindText, "lzs", false},
		{"/data/a.seq", KindSeq, "", true},
	}
	for _, tc := range cases {
		kind, codec := DetectPath(tc.path)
		if kind != tc.kind {
			t.Errorf("%s: kind = %v, want %v", tc.path, kind, tc.kind)
		}
		name := ""
		if codec != nil {
			name = codec.Name()
		}
		if name != tc.codec {
			t.Errorf("%s: codec = %q, want %q", tc.path, name, tc.codec)
		}
		if got := SplittablePath(tc.path); got != tc.splittable {
			t.Errorf("%s: splittable = %v, want %v", tc.path, got, tc.splittable)
		}
	}
}

// writeSeq builds a SequenceFile in memory with deterministic records.
func writeSeq(t *testing.T, codecName string, nrecs int, opts SeqWriterOptions) ([]byte, []SeqRecord) {
	t.Helper()
	c, err := ByName(codecName)
	if err != nil {
		t.Fatal(err)
	}
	opts.Codec = c
	var buf bytes.Buffer
	sw, err := NewSeqWriter(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want []SeqRecord
	for i := 0; i < nrecs; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := []byte(fmt.Sprintf("value number %d with some padding padding padding", i))
		if i%7 == 0 {
			key = nil // empty keys are legal (datagen corpora use them)
		}
		if err := sw.Append(key, val); err != nil {
			t.Fatal(err)
		}
		want = append(want, SeqRecord{Key: append([]byte(nil), key...), Val: append([]byte(nil), val...)})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Records != int64(nrecs) {
		t.Fatalf("writer counted %d records, wrote %d", sw.Records, nrecs)
	}
	return buf.Bytes(), want
}

func sameRecords(t *testing.T, got []SeqRecord, want []SeqRecord, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Val, want[i].Val) {
			t.Fatalf("%s: record %d mismatch: %q=%q want %q=%q",
				label, i, got[i].Key, got[i].Val, want[i].Key, want[i].Val)
		}
	}
}

func TestSeqRoundTrip(t *testing.T) {
	for _, codec := range []string{"none", "gzip", "lzs"} {
		data, want := writeSeq(t, codec, 200, SeqWriterOptions{BlockRecords: 16})
		got, stats, err := ReadSeqBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		sameRecords(t, got, want, codec)
		if stats.CodecName != codec {
			t.Errorf("%s: stats codec = %q", codec, stats.CodecName)
		}
		if stats.Blocks < 10 {
			t.Errorf("%s: only %d blocks for 200 records at 16/block", codec, stats.Blocks)
		}
	}
}

// TestSeqSplitAtEveryOffset is the load-bearing property: carving the
// file into two splits at ANY boundary yields exactly the whole file's
// record sequence — no block read twice, none lost. This is what makes
// ComputeSplits free to cut SequenceFiles at arbitrary byte offsets.
func TestSeqSplitAtEveryOffset(t *testing.T) {
	for _, codec := range []string{"none", "lzs"} {
		data, want := writeSeq(t, codec, 64, SeqWriterOptions{BlockRecords: 4})
		size := int64(len(data))
		read := BytesRangeReader(data)
		for cut := int64(0); cut <= size; cut++ {
			a, _, err := ReadSeqSplit(read, size, 0, cut)
			if err != nil {
				t.Fatalf("%s cut=%d first half: %v", codec, cut, err)
			}
			b, _, err := ReadSeqSplit(read, size, cut, size)
			if err != nil {
				t.Fatalf("%s cut=%d second half: %v", codec, cut, err)
			}
			sameRecords(t, append(a, b...), want, fmt.Sprintf("%s cut=%d", codec, cut))
		}
	}
}

// TestSeqSplitManyWays carves a file into n equal splits and checks the
// union, mimicking what the planner actually does.
func TestSeqSplitManyWays(t *testing.T) {
	data, want := writeSeq(t, "lzs", 500, SeqWriterOptions{BlockRecords: 8})
	size := int64(len(data))
	read := BytesRangeReader(data)
	for _, n := range []int64{1, 2, 3, 5, 7, 16} {
		var got []SeqRecord
		for i := int64(0); i < n; i++ {
			off := size * i / n
			end := size * (i + 1) / n
			recs, _, err := ReadSeqSplit(read, size, off, end)
			if err != nil {
				t.Fatalf("n=%d split %d: %v", n, i, err)
			}
			got = append(got, recs...)
		}
		sameRecords(t, got, want, fmt.Sprintf("n=%d", n))
	}
}

func TestSeqDeterministicBytes(t *testing.T) {
	a, _ := writeSeq(t, "lzs", 100, SeqWriterOptions{BlockRecords: 10})
	b, _ := writeSeq(t, "lzs", 100, SeqWriterOptions{BlockRecords: 10})
	if !bytes.Equal(a, b) {
		t.Fatal("same records produced different SequenceFile bytes")
	}
}

func TestSeqErrorPaths(t *testing.T) {
	data, _ := writeSeq(t, "gzip", 50, SeqWriterOptions{BlockRecords: 10})

	if _, _, err := ReadSeqBytes([]byte("not a seq file at all")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	// Truncate mid-block.
	if _, _, err := ReadSeqBytes(data[:len(data)-5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated block: got %v", err)
	}

	// Unknown codec name in the header.
	bad := append([]byte(nil), data...)
	// Header: magic(4) version(1) nameLen(1) name... — patch "gzip" to "gzqq".
	copy(bad[6:], "gzqq")
	if _, _, err := ReadSeqBytes(bad); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown codec: got %v", err)
	}

	// Corrupt a payload byte near the end of the file — inside the last
	// block's deflate data or CRC trailer, either of which gzip rejects.
	bad = append([]byte(nil), data...)
	bad[len(bad)-10] ^= 0xFF
	if _, _, err := ReadSeqBytes(bad); err == nil {
		t.Fatal("corrupt payload decoded without error")
	}
}

func TestSeqEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSeqWriter(&buf, SeqWriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := ReadSeqBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.Blocks != 0 {
		t.Fatalf("empty file: %d records, %d blocks", len(recs), stats.Blocks)
	}
}

func TestCompressedSize(t *testing.T) {
	data := bytes.Repeat([]byte("abc "), 500)
	n, err := CompressedSize(nil, data)
	if err != nil || n != int64(len(data)) {
		t.Fatalf("nil codec: %d, %v", n, err)
	}
	g, _ := ByName("gzip")
	n, err = CompressedSize(g, data)
	if err != nil || n <= 0 || n >= int64(len(data)) {
		t.Fatalf("gzip size: %d, %v", n, err)
	}
}

// sortRecords is kept for multiset comparisons if split order ever
// stops being deterministic; currently order is deterministic so the
// strict compare above is stronger.
func sortRecords(recs []SeqRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if c := bytes.Compare(recs[i].Key, recs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(recs[i].Val, recs[j].Val) < 0
	})
}

package iofmt

import "strings"

// Format detection by path. The split planner needs to answer two
// questions about an input file before a single task runs: how is it
// containered (line-oriented text vs SequenceFile), and can it be split?
// Both are decided by naming convention, as in Hadoop: ".seq" means
// SequenceFile, a codec suffix (".gz", ".lzs") means a whole-stream
// compressed text file, anything else is plain text.

// Kind is an input file's container format.
type Kind int

const (
	// KindText is newline-delimited text, possibly whole-stream
	// compressed (DetectPath also reports the codec).
	KindText Kind = iota
	// KindSeq is the block-compressed SequenceFile container.
	KindSeq
)

func (k Kind) String() string {
	if k == KindSeq {
		return "seq"
	}
	return "text"
}

// SeqExtension is the suffix that marks a SequenceFile.
const SeqExtension = ".seq"

// DetectPath classifies a file path: its container kind and, for text,
// the whole-stream codec implied by its suffix (nil for plain text).
// SequenceFiles record their codec in the header, so codec is always
// nil for KindSeq.
func DetectPath(path string) (Kind, Codec) {
	if strings.HasSuffix(path, SeqExtension) {
		return KindSeq, nil
	}
	return KindText, ByExtension(path)
}

// SplittablePath reports whether the file at path may be carved into
// byte-range splits for parallel reading. SequenceFiles always can
// (sync markers); compressed text can only if its codec is splittable —
// which for whole-stream gzip/lzs it is not, the lesson at the heart of
// the IO lab: gzipping a big input silently serialises the map phase.
func SplittablePath(path string) bool {
	kind, codec := DetectPath(path)
	if kind == KindSeq {
		return true
	}
	return codec == nil || codec.Splittable()
}

// DecodeToText renders a file's bytes back to canonical text, whatever
// its container: compressed text is inflated, SequenceFiles render one
// line per record, plain text passes through unchanged. This is the
// shell's `-text` and the identity that makes "byte-identical output
// across formats" a testable claim.
func DecodeToText(path string, data []byte) ([]byte, error) {
	kind, codec := DetectPath(path)
	if kind == KindSeq {
		recs, _, err := ReadSeqBytes(data)
		if err != nil {
			return nil, err
		}
		var b []byte
		for _, r := range recs {
			b = append(b, r.TextLine()...)
			b = append(b, '\n')
		}
		return b, nil
	}
	if codec != nil {
		return codec.Decompress(data)
	}
	return data, nil
}

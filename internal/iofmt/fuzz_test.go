package iofmt

import (
	"bytes"
	"testing"
)

// recordsFrom deterministically chops fuzz input into key/value records of
// irregular small sizes, so one []byte input exercises empty keys, empty
// values, and records that straddle block boundaries.
func recordsFrom(data []byte) (keys, vals [][]byte) {
	i := 0
	for n := 1; i < len(data); n++ {
		k := i + n%7
		if k > len(data) {
			k = len(data)
		}
		v := k + n%11
		if v > len(data) {
			v = len(data)
		}
		keys = append(keys, data[i:k])
		vals = append(vals, data[k:v])
		i = v
	}
	return keys, vals
}

func fuzzCodec(pick uint8) Codec {
	switch pick % 3 {
	case 1:
		c, _ := ByName("gzip")
		return c
	case 2:
		c, _ := ByName("lzs")
		return c
	}
	return nil // store raw
}

// FuzzSeqSplit pins the splittability invariant the IO lab relies on:
// cutting a SequenceFile at ANY byte offset and reading the two splits
// yields exactly the records of reading the file whole, in order, for
// every codec and block size.
func FuzzSeqSplit(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint16(17), uint8(2), uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint16(0), uint8(1), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xff, 0xfe}, uint16(999), uint8(5), uint8(2))
	f.Add([]byte{}, uint16(3), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, splitAt uint16, blockRecs uint8, codecPick uint8) {
		keys, vals := recordsFrom(data)
		var buf bytes.Buffer
		sw, err := NewSeqWriter(&buf, SeqWriterOptions{
			Codec:        fuzzCodec(codecPick),
			BlockRecords: 1 + int(blockRecs%8),
			BlockBytes:   64, // tiny blocks: many sync points per input
		})
		if err != nil {
			t.Fatalf("NewSeqWriter: %v", err)
		}
		for i := range keys {
			if err := sw.Append(keys[i], vals[i]); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		file := buf.Bytes()
		size := int64(len(file))

		full, _, err := ReadSeqBytes(file)
		if err != nil {
			t.Fatalf("ReadSeqBytes: %v", err)
		}
		if len(full) != len(keys) {
			t.Fatalf("full read: %d records, wrote %d", len(full), len(keys))
		}
		for i, r := range full {
			if !bytes.Equal(r.Key, keys[i]) || !bytes.Equal(r.Val, vals[i]) {
				t.Fatalf("full read record %d: got (%q,%q), wrote (%q,%q)", i, r.Key, r.Val, keys[i], vals[i])
			}
		}

		s := int64(splitAt) % (size + 1)
		read := BytesRangeReader(file)
		left, _, err := ReadSeqSplit(read, size, 0, s)
		if err != nil {
			t.Fatalf("ReadSeqSplit[0,%d): %v", s, err)
		}
		right, _, err := ReadSeqSplit(read, size, s, size)
		if err != nil {
			t.Fatalf("ReadSeqSplit[%d,%d): %v", s, size, err)
		}
		if len(left)+len(right) != len(full) {
			t.Fatalf("split at %d: %d+%d records, full read has %d", s, len(left), len(right), len(full))
		}
		for i, r := range append(left, right...) {
			if !bytes.Equal(r.Key, full[i].Key) || !bytes.Equal(r.Val, full[i].Val) {
				t.Fatalf("split at %d: record %d = (%q,%q), full read has (%q,%q)",
					s, i, r.Key, r.Val, full[i].Key, full[i].Val)
			}
		}
	})
}

// FuzzSeqReadCorrupt feeds arbitrary bytes to the SequenceFile reader:
// whatever the corruption, it must return an error or records — never
// panic, never loop. Seeds include a valid file prefix so mutations
// explore truncations and bit flips of real block structure.
func FuzzSeqReadCorrupt(f *testing.F) {
	var buf bytes.Buffer
	sw, _ := NewSeqWriter(&buf, SeqWriterOptions{BlockRecords: 2})
	_ = sw.Append([]byte("key"), []byte("value"))
	_ = sw.Append([]byte("k2"), []byte("v2"))
	_ = sw.Append([]byte("k3"), []byte("v3"))
	_ = sw.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-3])
	f.Add([]byte("SEQREPRO"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := ReadSeqBytes(data)
		if err != nil {
			return
		}
		// A successfully decoded file must re-encode its records sanely.
		for _, r := range recs {
			if r.Offset < 0 || r.Offset > int64(len(data)) {
				t.Fatalf("record offset %d outside file of %d bytes", r.Offset, len(data))
			}
		}
	})
}

// FuzzCodecRoundTrip checks Compress/Decompress round-trips for every
// registered codec, and that Decompress survives arbitrary (corrupt)
// input without panicking — the lzs decoder walks attacker-controlled
// back-references.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("compress me compress me compress me"), uint8(2))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f}, uint8(1))
	f.Add([]byte(""), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, pick uint8) {
		for _, name := range CodecNames() {
			c, err := ByName(name)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			enc, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s: Compress: %v", name, err)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: Decompress(Compress(x)): %v", name, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s: round-trip mismatch: %d bytes in, %d out", name, len(data), len(dec))
			}
			// Corrupt-input decode: must not panic; errors are fine.
			if _, err := c.Decompress(data); err == nil && pick%2 == 0 {
				_ = err
			}
		}
	})
}

package serial

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

func BenchmarkWordCountStandalone(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("the quick brown fox jumps over the lazy dog\n")
	}
	data := []byte(sb.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs := vfs.NewMemFS()
		if err := vfs.WriteFile(fs, "/in/d.txt", data); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := (&Runner{FS: fs, Parallelism: 4}).Run(wordCountJob("/in", "/out")); err != nil {
			b.Fatal(err)
		}
	}
}

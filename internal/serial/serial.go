// Package serial implements the standalone MapReduce runner of the
// course's first assignment: the full programming model (splits, sort,
// combiners, counters) executed directly against a plain filesystem with
// no HDFS and no cluster — "using only serial Java commands without any
// HDFS support", in the paper's words. Mappers may optionally run on real
// goroutines, but there is no distribution, no locality and no fault
// tolerance; that contrast is the pedagogical point.
package serial

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/iofmt"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Runner executes jobs against a single filesystem.
type Runner struct {
	// FS is the filesystem holding inputs, side files and outputs.
	FS vfs.FileSystem
	// Parallelism is the number of concurrent map tasks (default 1: fully
	// serial, matching the assignment's baseline).
	Parallelism int
	// Obs, when set, receives standalone-run counters (task launches and
	// record/byte volumes). No spans or durations are recorded: the
	// standalone runner has no virtual clock, and wall-clock times would
	// break snapshot determinism.
	Obs *obs.Registry
}

// Report summarises one standalone run. It carries no elapsed time: the
// standalone runner has no virtual clock and does no performance
// modelling, and a wall-clock measurement here was the one
// nondeterministic value in an otherwise bit-reproducible run (the
// wallclock lint rule now keeps it out).
type Report struct {
	JobName     string
	MapTasks    int
	ReduceTasks int
	Counters    *mapreduce.Counters
}

// String renders the report in the style of a Hadoop job summary.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Job %s completed successfully (standalone)\n", r.JobName)
	fmt.Fprintf(&b, "  Launched map tasks=%d\n", r.MapTasks)
	fmt.Fprintf(&b, "  Launched reduce tasks=%d\n", r.ReduceTasks)
	fmt.Fprintf(&b, "  Counters:\n%s", r.Counters)
	return b.String()
}

// Run executes the job to completion, writing part-r-NNNNN files and a
// _SUCCESS marker under job.OutputPath.
func (r *Runner) Run(job *mapreduce.Job) (*Report, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if r.FS == nil {
		return nil, fmt.Errorf("serial: runner has no filesystem")
	}
	if vfs.Exists(r.FS, job.OutputPath) {
		return nil, &vfs.PathError{Op: "run", Path: job.OutputPath, Err: vfs.ErrExist}
	}
	splits, err := mapreduce.ComputeSplits(r.FS, job.InputPaths, job.EffectiveSplitSize())
	if err != nil {
		return nil, fmt.Errorf("serial: computing splits: %w", err)
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("serial: no input data under %v", job.InputPaths)
	}

	total := mapreduce.NewCounters()
	nReduce := job.Reducers()

	// Map phase: each task owns its context and counters; results are
	// merged afterwards so there is no cross-task locking.
	type mapResult struct {
		out *mapreduce.MapOutput
		ctx *mapreduce.TaskContext
		err error
	}
	results := make([]mapResult, len(splits))
	par := r.Parallelism
	if par <= 0 {
		par = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, split := range splits {
		wg.Add(1)
		go func(i int, split mapreduce.FileSplit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ctx := mapreduce.NewTaskContext(job.Name, fmt.Sprintf("attempt_m_%06d_0", i), r.FS, job)
			recs, rstats, err := mapreduce.ReadSplitRecords(r.FS, split)
			if err != nil {
				results[i] = mapResult{err: fmt.Errorf("split %v: %w", split, err)}
				return
			}
			ctx.Counters.Inc(mapreduce.CtrFileBytesRead, rstats.BytesRead)
			ctx.Counters.Inc(mapreduce.CtrInputDecodedBytes, rstats.BytesDecoded)
			out, err := mapreduce.ExecuteMap(ctx, job, recs)
			results[i] = mapResult{out: out, ctx: ctx, err: err}
		}(i, split)
	}
	wg.Wait()
	runsByPartition := make([][][]mapreduce.Pair, nReduce)
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		total.Merge(res.ctx.Counters)
		for p, pairs := range res.out.Partitions {
			runsByPartition[p] = append(runsByPartition[p], pairs)
		}
	}

	// Reduce phase, sequential: one output file per reducer.
	if err := r.FS.Mkdir(job.OutputPath); err != nil {
		return nil, err
	}
	for p := 0; p < nReduce; p++ {
		ctx := mapreduce.NewTaskContext(job.Name, fmt.Sprintf("attempt_r_%06d_0", p), r.FS, job)
		// Even with no network, account the map->reduce handoff volume the
		// way the cluster does, so SHUFFLE_BYTES exists (and means the same
		// logical bytes) in both runtimes.
		var shuffled int64
		for _, run := range runsByPartition[p] {
			for _, kv := range run {
				shuffled += kv.Bytes()
			}
		}
		ctx.Counters.Inc(mapreduce.CtrShuffleBytes, shuffled)
		ow, err := mapreduce.NewOutputWriter(job)
		if err != nil {
			return nil, err
		}
		if _, err := mapreduce.ExecuteReduce(ctx, job, runsByPartition[p], ow); err != nil {
			return nil, err
		}
		data, ostats, err := ow.Finish()
		if err != nil {
			return nil, err
		}
		outPath := vfs.Join(job.OutputPath, job.OutputPartName(p))
		if err := vfs.WriteFile(r.FS, outPath, data); err != nil {
			return nil, err
		}
		ctx.Counters.Inc(mapreduce.CtrFileBytesWritten, int64(len(data)))
		ctx.Counters.Inc(mapreduce.CtrOutputRawBytes, ostats.RawBytes)
		total.Merge(ctx.Counters)
	}
	if err := vfs.WriteFile(r.FS, vfs.Join(job.OutputPath, "_SUCCESS"), nil); err != nil {
		return nil, err
	}
	total.Inc(mapreduce.CtrLaunchedMaps, int64(len(splits)))
	total.Inc(mapreduce.CtrLaunchedReduces, int64(nReduce))

	r.Obs.Counter("serial.jobs_run").Inc()
	r.Obs.Counter("serial.map_tasks").Add(int64(len(splits)))
	r.Obs.Counter("serial.reduce_tasks").Add(int64(nReduce))
	r.Obs.Counter("serial.map_input_records").Add(total.Get(mapreduce.CtrMapInputRecords))
	r.Obs.Counter("serial.bytes_read").Add(total.Get(mapreduce.CtrFileBytesRead))
	r.Obs.Counter("serial.bytes_written").Add(total.Get(mapreduce.CtrFileBytesWritten))
	r.Obs.Counter("serial.bytes_decoded").Add(total.Get(mapreduce.CtrInputDecodedBytes))

	return &Report{
		JobName:     job.Name,
		MapTasks:    len(splits),
		ReduceTasks: nReduce,
		Counters:    total,
	}, nil
}

// ReadOutput concatenates the part files of a completed job in order,
// rendering each back to canonical text whatever its container format —
// so outputs compare byte-identical across text, compressed and
// SequenceFile jobs. A convenience for tests and examples.
func ReadOutput(fs vfs.FileSystem, outputPath string) (string, error) {
	infos, err := fs.List(outputPath)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	for _, fi := range infos {
		if fi.IsDir || fi.Name() == "_SUCCESS" {
			continue
		}
		data, err := vfs.ReadFile(fs, fi.Path)
		if err != nil {
			return "", err
		}
		text, err := iofmt.DecodeToText(fi.Path, data)
		if err != nil {
			return "", fmt.Errorf("decoding %s: %w", fi.Path, err)
		}
		b.Write(text)
	}
	return b.String(), nil
}

package serial

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/vfs"
)

func wordCountJob(in, out string) *mapreduce.Job {
	return &mapreduce.Job{
		Name: "wordcount",
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, off int64, line string, emit mapreduce.Emitter) error {
				for _, w := range strings.Fields(line) {
					if err := emit.Emit(w, mapreduce.Int64(1)); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key string, values *mapreduce.Values, emit mapreduce.Emitter) error {
				var sum int64
				if err := values.Each(func(v mapreduce.Value) error {
					sum += int64(v.(mapreduce.Int64))
					return nil
				}); err != nil {
					return err
				}
				return emit.Emit(key, mapreduce.Int64(sum))
			})
		},
		DecodeValue: mapreduce.DecodeInt64,
		InputPaths:  []string{in},
		OutputPath:  out,
	}
}

func outputCounts(t *testing.T, fs vfs.FileSystem, out string) map[string]int {
	t.Helper()
	text, err := ReadOutput(fs, out)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			continue
		}
		var w string
		var n int
		if _, err := fmt.Sscanf(line, "%s\t%d", &w, &n); err != nil {
			t.Fatalf("bad output line %q: %v", line, err)
		}
		counts[w] = n
	}
	return counts
}

func TestWordCountEndToEnd(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f1.txt", []byte("to be or not to be\n")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/in/f2.txt", []byte("to be is to do\n")); err != nil {
		t.Fatal(err)
	}
	r := &Runner{FS: fs}
	job := wordCountJob("/in", "/out")
	rep, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	counts := outputCounts(t, fs, "/out")
	want := map[string]int{"to": 4, "be": 3, "or": 1, "not": 1, "is": 1, "do": 1}
	for w, n := range want {
		if counts[w] != n {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", w, counts[w], n, counts)
		}
	}
	if !vfs.Exists(fs, "/out/_SUCCESS") {
		t.Fatal("_SUCCESS marker missing")
	}
	if rep.Counters.Get(mapreduce.CtrMapInputRecords) != 2 {
		t.Fatalf("map input records = %d", rep.Counters.Get(mapreduce.CtrMapInputRecords))
	}
}

func TestOutputExistsRefused(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/out"); err != nil {
		t.Fatal(err)
	}
	r := &Runner{FS: fs}
	_, err := r.Run(wordCountJob("/in", "/out"))
	if !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("want ErrExist for existing output dir, got %v", err)
	}
}

func TestEmptyInputFails(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/empty.txt", nil); err != nil {
		t.Fatal(err)
	}
	r := &Runner{FS: fs}
	if _, err := r.Run(wordCountJob("/in", "/out")); err == nil {
		t.Fatal("job with no data succeeded")
	}
}

func TestMissingInputFails(t *testing.T) {
	fs := vfs.NewMemFS()
	r := &Runner{FS: fs}
	if _, err := r.Run(wordCountJob("/nope", "/out")); err == nil {
		t.Fatal("job with missing input succeeded")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Determinism property: output bytes are identical for any mapper
	// parallelism, because partitions are merged in split order.
	mkfs := func() vfs.FileSystem {
		fs := vfs.NewMemFS()
		var b strings.Builder
		for i := 0; i < 500; i++ {
			fmt.Fprintf(&b, "word%d alpha beta gamma word%d\n", i%17, i%5)
		}
		if err := vfs.WriteFile(fs, "/in/data.txt", []byte(b.String())); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	var outputs []string
	for _, par := range []int{1, 4, 16} {
		fs := mkfs()
		job := wordCountJob("/in", "/out")
		job.SplitSize = 256 // force many splits
		job.NumReducers = 3
		r := &Runner{FS: fs, Parallelism: par}
		if _, err := r.Run(job); err != nil {
			t.Fatal(err)
		}
		text, err := ReadOutput(fs, "/out")
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, text)
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatal("output differs across parallelism levels")
	}
}

func TestMultipleReducersPartitionDisjointly(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("a b c d e f g h\n")); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("/in", "/out")
	job.NumReducers = 4
	r := &Runner{FS: fs}
	rep, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReduceTasks != 4 {
		t.Fatalf("reduce tasks = %d", rep.ReduceTasks)
	}
	infos, err := fs.List("/out")
	if err != nil {
		t.Fatal(err)
	}
	parts := 0
	seen := map[string]bool{}
	for _, fi := range infos {
		if fi.Name() == "_SUCCESS" {
			continue
		}
		parts++
		data, _ := vfs.ReadFile(fs, fi.Path)
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			key := strings.SplitN(line, "\t", 2)[0]
			if seen[key] {
				t.Fatalf("key %q appears in multiple partitions", key)
			}
			seen[key] = true
		}
	}
	if parts != 4 {
		t.Fatalf("part files = %d, want 4", parts)
	}
	if len(seen) != 8 {
		t.Fatalf("distinct keys = %d, want 8", len(seen))
	}
}

func TestCombinerCountersVisible(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("x x x x y y\n")); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("/in", "/out")
	job.NewCombiner = job.NewReducer
	r := &Runner{FS: fs}
	rep, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.Get(mapreduce.CtrCombineInputRecords) != 6 {
		t.Fatalf("combine in = %d", rep.Counters.Get(mapreduce.CtrCombineInputRecords))
	}
	if rep.Counters.Get(mapreduce.CtrCombineOutputRecords) != 2 {
		t.Fatalf("combine out = %d", rep.Counters.Get(mapreduce.CtrCombineOutputRecords))
	}
	counts := outputCounts(t, fs, "/out")
	if counts["x"] != 4 || counts["y"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRunOnOsFS(t *testing.T) {
	fs, err := vfs.NewOsFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("disk disk mem\n")); err != nil {
		t.Fatal(err)
	}
	r := &Runner{FS: fs}
	if _, err := r.Run(wordCountJob("/in", "/out")); err != nil {
		t.Fatal(err)
	}
	counts := outputCounts(t, fs, "/out")
	if counts["disk"] != 2 || counts["mem"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReportString(t *testing.T) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/in/f.txt", []byte("a\n")); err != nil {
		t.Fatal(err)
	}
	r := &Runner{FS: fs}
	rep, err := r.Run(wordCountJob("/in", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "wordcount") || !strings.Contains(s, "MAP_INPUT_RECORDS") {
		t.Fatalf("report missing fields:\n%s", s)
	}
}

// Quickstart: build a simulated 8-node Hadoop cluster, stage a synthetic
// Shakespeare-style corpus into HDFS, run WordCount with a combiner, and
// read the report and results — the course's first in-class lab in ~40
// lines of API.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/jobs"
)

func main() {
	// 1. A cluster like the paper's dedicated one: 8 nodes, 3x replication.
	c, err := core.New(core.Options{Nodes: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Stage data into HDFS (the generator writes through the HDFS client).
	truth, n, err := datagen.Text(c.FS(), "/user/student/input/corpus.txt",
		datagen.TextOpts{Lines: 20000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %d bytes of corpus into HDFS\n", n)

	// 3. Run WordCount (reducer doubles as combiner).
	rep, err := c.Run(jobs.WordCount("/user/student/input", "/user/student/out", true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// 4. Read the results back and show the top five words.
	out, err := c.Output("/user/student/out")
	if err != nil {
		log.Fatal(err)
	}
	type wc struct {
		word  string
		count int
	}
	var counts []wc
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		f := strings.SplitN(line, "\t", 2)
		if len(f) != 2 {
			continue
		}
		cnt, _ := strconv.Atoi(f[1])
		counts = append(counts, wc{f[0], cnt})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })
	fmt.Println("\ntop words:")
	for i := 0; i < 5 && i < len(counts); i++ {
		fmt.Printf("  %-8s %d\n", counts[i].word, counts[i].count)
	}
	fmt.Printf("\nground truth agrees: %q x%d\n", truth.TopWord, truth.TopWordCount)
}

// TeraSort: the classic Hadoop benchmark as a course capstone. Samples
// the input for quantile split points, range-partitions keys across
// reducers (a custom Partitioner, not hashing), and produces part files
// whose concatenation is globally sorted — with and without shuffle
// compression.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mrcluster"
)

func main() {
	run := func(compress bool) {
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  4,
			HDFS:  hdfs.Config{BlockSize: 64 << 10},
			MR:    mrcluster.Config{CompressShuffle: compress},
		})
		if err != nil {
			log.Fatal(err)
		}
		rows, n, err := datagen.Sortable(c.FS(), "/in/records.txt", datagen.SortableOpts{Rows: 20000, Seed: 4})
		if err != nil {
			log.Fatal(err)
		}
		job, err := jobs.TeraSort(c.FS(), "/in", "/out", 8)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := c.Run(job)
		if err != nil {
			log.Fatal(err)
		}
		out, err := c.Output("/out")
		if err != nil {
			log.Fatal(err)
		}
		sorted, err := jobs.ValidateSorted(out)
		if err != nil {
			log.Fatal(err)
		}
		label := "raw shuffle"
		if compress {
			label = "compressed shuffle"
		}
		fmt.Printf("%-20s %d rows (%d B in), %d reducers, shuffle %d B, makespan %v, sorted rows %d ✓\n",
			label, rows, n, rep.ReduceTasks, rep.ShuffleBytes(),
			rep.Makespan().Round(time.Millisecond), sorted)
	}
	fmt.Println("TeraSort on a simulated 8-node cluster (range partitioner from sampled quantiles):")
	run(false)
	run(true)
}

// HBase lecture demo (added to the module in Fall 2013 "to provide a more
// comprehensive view of the Hadoop ecosystem"): a sorted, versioned
// key-value table living on HDFS. Shows the write-ahead log, MemStore
// flushes to sorted store files, range scans, crash recovery, and that
// the table inherits HDFS's fault tolerance when a DataNode dies.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	topo := cluster.NewTopology(cluster.PaperNodeConfig(4, 1))
	dfs, err := hdfs.NewMiniDFS(eng, topo, hdfs.Options{
		Seed:   5,
		Config: hdfs.Config{Replication: 3, HeartbeatInterval: time.Second, HeartbeatExpiry: 5 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	client := dfs.Client(hdfs.GatewayNode)

	tbl, err := kvstore.Open(client, "/hbase/courses", kvstore.Config{FlushThresholdBytes: 2 << 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created table /hbase/courses on HDFS")

	// Row keys sort lexicographically, like HBase.
	rows := map[string]string{
		"cpsc2310:title": "Intro to Computer Organization",
		"cpsc3620:title": "Distributed and Cluster Computing",
		"cpsc3620:tool":  "minihadoop",
		"cpsc4240:title": "System Administration",
	}
	for k, v := range rows {
		if err := tbl.Put(k, []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d cells; %d store file(s) flushed to HDFS\n", len(rows), tbl.StoreFileCount())

	// Range scan: everything about cpsc3620.
	kvs, err := tbl.Scan("cpsc3620:", "cpsc3620;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan cpsc3620:* ->")
	for _, kv := range kvs {
		fmt.Printf("  %-16s %s\n", kv.Key, kv.Value)
	}

	// Update + delete, then crash-recover from the WAL.
	tbl.Put("cpsc3620:tool", []byte("minihadoop v2"))
	tbl.Delete("cpsc4240:title")
	tbl2, err := kvstore.Open(client, "/hbase/courses", kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	v, err := tbl2.Get("cpsc3620:tool")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reopen (WAL replay): cpsc3620:tool = %s\n", v)
	if _, err := tbl2.Get("cpsc4240:title"); errors.Is(err, kvstore.ErrNotFound) {
		fmt.Println("after reopen: cpsc4240:title is deleted (tombstone replayed)")
	}

	// A DataNode dies; the table's HDFS files survive via replication.
	dfs.DataNode(1).Kill()
	eng.Advance(30 * time.Second)
	v, err = tbl2.Get("cpsc3620:title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after DataNode loss: cpsc3620:title = %s (served from surviving replicas)\n", v)
	rep, _ := dfs.Fsck()
	fmt.Printf("fsck: %s, %d under-replicated block(s) being repaired\n", rep.Status(), rep.UnderReplicated)
}

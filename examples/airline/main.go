// Airline lab: the three algorithmic designs for "average delay per
// airline" from the MapReduce in-class lab — plain emission, combiner
// with a custom value class, and in-mapper combining — run on the same
// data, with the shuffle/memory/runtime trade-offs printed side by side.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
)

func main() {
	variants := []struct {
		name  string
		build func(in, out string) *mapreduce.Job
	}{
		{"plain", jobs.AirlineAvgDelayPlain},
		{"combiner + custom value class", jobs.AirlineAvgDelayCombiner},
		{"in-mapper combining", jobs.AirlineAvgDelayInMapper},
	}
	fmt.Printf("%-30s %12s %14s %12s\n", "variant", "shuffle (B)", "mapper mem (B)", "makespan")
	var firstOut string
	for i, v := range variants {
		// Fresh cluster per variant so measurements are independent.
		c, err := core.New(core.Options{
			Nodes: 8,
			Seed:  7,
			HDFS:  hdfs.Config{BlockSize: 128 << 10},
			MR: mrcluster.Config{
				MapWork:    cluster.CPUWork{Startup: 100 * time.Millisecond, PerByte: 10, PerRecord: 1000},
				ReduceWork: cluster.CPUWork{Startup: 100 * time.Millisecond, PerByte: 8, PerRecord: 800},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := datagen.Airline(c.FS(), "/in/ontime.csv",
			datagen.AirlineOpts{Rows: 30000, Seed: 7}); err != nil {
			log.Fatal(err)
		}
		rep, err := c.Run(v.build("/in", "/out"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %12d %14d %12v\n", v.name,
			rep.ShuffleBytes(),
			rep.Counters.Get(mapreduce.CtrMapperMemoryPeak),
			rep.Makespan().Round(time.Millisecond))
		if i == 0 {
			if firstOut, err = c.Output("/out"); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nall three produce per-carrier averages; sample output:")
	for i, line := range strings.Split(strings.TrimSpace(firstOut), "\n") {
		if i == 5 {
			break
		}
		fmt.Println("  " + line)
	}
}

// Movies assignment (assignment 1, Spring 2013): descriptive statistics
// of ratings per movie genre with a side-data join, run in the
// assignment's standalone mode (MapReduce API, plain filesystem, no
// HDFS). Shows both side-data access patterns and answers part 2: the
// most active user and their favourite genre.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/serial"
	"repro/internal/vfs"
)

func main() {
	fs := vfs.NewMemFS()
	truth, n, err := datagen.Movies(fs, "/ml", datagen.MovieOpts{
		Movies: 500, Users: 800, Ratings: 50000, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bytes of MovieLens-style data (movies.dat + ratings.dat)\n\n", n)
	runner := &serial.Runner{FS: fs, Parallelism: 4}

	// Part 1: per-genre statistics, efficient side-data pattern.
	rep, err := runner.Run(jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/out-genres", true))
	if err != nil {
		log.Fatal(err)
	}
	out, err := serial.ReadOutput(fs, "/out-genres")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-genre rating statistics (cached side data):")
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		fmt.Println("  " + line)
	}
	fmt.Printf("side file opened %d time(s) across %d map tasks\n\n",
		rep.Counters.Get(mapreduce.CtrSideFileOpens), rep.MapTasks)

	// The anti-pattern, for contrast: re-read movies.dat per record.
	repNaive, err := runner.Run(jobs.MovieGenreStats("/ml/ratings.dat", "/ml/movies.dat", "/out-naive", false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive variant: side file opened %d times, %d bytes re-read (the assignment's 'order of magnitude' lesson)\n\n",
		repNaive.Counters.Get(mapreduce.CtrSideFileOpens),
		repNaive.Counters.Get(mapreduce.CtrSideFileBytesRead))

	// Part 2: most active user + favourite genre (custom output value).
	if _, err := runner.Run(jobs.MostActiveUser("/ml/ratings.dat", "/ml/movies.dat", "/out-user")); err != nil {
		log.Fatal(err)
	}
	userOut, err := serial.ReadOutput(fs, "/out-user")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most active user: %s", userOut)
	fmt.Printf("ground truth: user %d with %d ratings, favourite %s\n",
		truth.TopUser, truth.TopUserCount, truth.FavGenre)
}

// PageRank as iterated MapReduce: the workload class the paper's future
// work points at ("in-memory distributed computing") exists precisely
// because this pattern writes the whole graph to HDFS between
// iterations. Runs a 10-iteration pipeline via jobcontrol on a simulated
// cluster, prints the top pages and the cumulative HDFS traffic the
// iteration pattern generated, and checks against plain power iteration.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobcontrol"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
)

func main() {
	const (
		nodes      = 500
		iterations = 10
		damping    = 0.85
	)
	c, err := core.New(core.Options{Nodes: 8, Seed: 3, HDFS: hdfs.Config{BlockSize: 16 << 10}})
	if err != nil {
		log.Fatal(err)
	}
	truth, n, err := datagen.Graph(c.FS(), "/graph.txt", datagen.GraphOpts{
		Nodes: nodes, AvgEdges: 6, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged a %d-node web graph (%d bytes) into HDFS\n", nodes, n)

	var hdfsBytes int64
	ctl := jobcontrol.New()
	ctl.Chain(jobs.PageRankPipeline("/graph.txt", "/work", "/ranks", nodes, iterations, damping)...)
	if err := ctl.Run(func(j *mapreduce.Job) error {
		rep, err := c.Run(j)
		if err == nil {
			hdfsBytes += rep.Counters.Get(mapreduce.CtrHDFSBytesRead) +
				rep.Counters.Get(mapreduce.CtrHDFSBytesWritten)
		}
		return err
	}, c.FS()); err != nil {
		log.Fatal(err)
	}

	out, err := c.Output("/ranks")
	if err != nil {
		log.Fatal(err)
	}
	ranks := jobs.ParsePageRanks(out)
	type pr struct {
		node int
		rank float64
	}
	var all []pr
	for v, r := range ranks {
		all = append(all, pr{v, r})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank > all[j].rank })
	fmt.Println("\ntop pages after 10 iterations:")
	ref := truth.PageRank(iterations, damping)
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  node %-4d rank %.6f  (reference %.6f)\n", all[i].node, all[i].rank, ref[all[i].node])
	}
	fmt.Printf("\nHDFS bytes moved across %d iterations: %d — the disk churn\n", iterations, hdfsBytes)
	fmt.Println("that motivated in-memory engines (the paper's future-work section).")
}

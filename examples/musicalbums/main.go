// Music assignment (assignment 2, Spring 2013): stage the Yahoo!-style
// song database into HDFS with fs commands, inspect how HDFS stores and
// replicates it, find the album with the highest average rating on the
// cluster, and export the answer back to the local filesystem — the full
// myHadoop submission-script flow.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/vfs"
)

func main() {
	c, err := core.New(core.Options{
		Nodes: 8,
		Seed:  11,
		HDFS:  hdfs.Config{BlockSize: 256 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Generate the dataset on the "home directory" filesystem.
	local := vfs.NewMemFS()
	truth, _, err := datagen.Music(local, "/home/student/ym", datagen.MusicOpts{
		Songs: 1500, Albums: 120, Users: 900, Ratings: 80000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stage with fs commands and observe the block layout, as the
	// assignment hand-in required.
	sh := c.Shell(local, os.Stdout)
	script := `
hadoop fs -mkdir /user/student
hadoop fs -put /home/student/ym/ratings.tsv /user/student/ratings.tsv
hadoop fs -put /home/student/ym/songs.tsv /user/student/songs.tsv
hadoop fs -ls /user/student
hadoop fs -locations /user/student/ratings.tsv
hadoop fs -fsck /
`
	if err := sh.RunScript(script); err != nil {
		log.Fatal(err)
	}

	// Run the analysis on the cluster.
	rep, err := c.Run(jobs.TopAlbum("/user/student/ratings.tsv", "/user/student/songs.tsv", "/user/student/out"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// Export results home (hadoop fs -copyToLocal).
	if err := sh.Run("-copyToLocal", "/user/student/out", "/home/student/out"); err != nil {
		log.Fatal(err)
	}
	answer, err := vfs.ReadFile(local, "/home/student/out/part-r-00000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswer: %s", answer)
	fmt.Printf("ground truth: album %d, average %.2f\n", truth.BestAlbum, truth.BestAvg)
}

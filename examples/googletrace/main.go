// Google trace assignment (assignment 2, Fall 2012): analyze a data
// center system log and find the computing job with the largest number of
// task resubmissions. This example also demonstrates the fault tolerance
// a real class needs: a TaskTracker crashes mid-job and the JobTracker
// reschedules its work without losing the answer.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/hdfs"
	"repro/internal/jobs"
	"repro/internal/mapreduce"
	"repro/internal/mrcluster"
)

func main() {
	c, err := core.New(core.Options{
		Nodes: 8,
		Seed:  23,
		HDFS: hdfs.Config{
			BlockSize:         128 << 10,
			HeartbeatInterval: time.Second,
			HeartbeatExpiry:   10 * time.Second,
		},
		MR: mrcluster.Config{
			HeartbeatInterval: time.Second,
			TrackerExpiry:     5 * time.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	truth, n, err := datagen.Trace(c.FS(), "/data/trace/task_events.csv",
		datagen.TraceOpts{Jobs: 120, MeanTasks: 25, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %d bytes of cluster-trace events (%d events) into HDFS\n", n, truth.Events)

	// Submit, then crash a TaskTracker while the job runs.
	h, err := c.MR.Submit(jobs.TraceMaxResubmissions("/data/trace", "/out"))
	if err != nil {
		log.Fatal(err)
	}
	c.Engine.Advance(2 * time.Second)
	if !h.Done() {
		c.MR.KillTaskTracker(3)
		fmt.Println("TaskTracker on node 3 crashed mid-job; JobTracker reschedules its tasks")
	}
	for !h.Done() {
		if !c.Engine.Step() {
			log.Fatal("simulation stalled")
		}
	}
	if err := h.Err(); err != nil {
		log.Fatal(err)
	}
	rep := h.Report()
	fmt.Print(rep)
	fmt.Printf("task attempts killed by the crash: %d\n",
		rep.Counters.Get(mapreduce.CtrKilledTaskAttempts))

	out, err := c.Output("/out")
	if err != nil {
		log.Fatal(err)
	}
	jobID, resub, ok := jobs.ParseTraceAnswer(out)
	if !ok {
		log.Fatalf("unparseable answer %q", out)
	}
	fmt.Printf("\nanswer: job %d with %d task resubmissions\n", jobID, resub)
	fmt.Printf("ground truth: job %d with %d resubmissions\n", truth.MaxJob, truth.MaxResub)
}
